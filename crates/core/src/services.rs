//! The DPU's RPC service surface.
//!
//! Paper §2.4: network-attached SSDs exporting "application-defined,
//! high-level, fault-tolerant data structures and abstractions ... such as
//! trees, lookup-tables, distributed/shared ordered logs, atomic writes
//! with transactional interfaces", behind a Willow-style specializable RPC
//! interface. Each request runs entirely on the DPU: the returned
//! completion time is the *server work* a transport charges between
//! request arrival and response departure — with no host CPU anywhere.
//!
//! The surface is typed by domain: [`KvOp`], [`TreeOp`], [`LogOp`],
//! [`FileOp`], and [`ColumnarOp`] each dispatch with the uniform signature
//! `dispatch(self, &mut HyperionDpu, now) -> Result<(ServiceResponse, Ns),
//! ServiceError>`, and [`ServiceOp`] is the umbrella a transport endpoint
//! routes on. The flat [`ServiceRequest`] enum and
//! [`HyperionDpu::serve`] remain as a thin compatibility wrapper over the
//! same dispatch path.
//!
//! `TreeOp::NodeRead` exists for the baseline side of experiment E6: a
//! client-driven pointer chase fetches one node per RPC, while
//! `TreeOp::Lookup` does the whole traversal in one RPC.

use bytes::Bytes;
use hyperion_sim::time::Ns;
use hyperion_storage::columnar::{self, ColumnBatch, FileMeta, Predicate, ScanStats};
use hyperion_storage::corfu::LogEntry;
use hyperion_telemetry::{Component, Recorder};

use crate::dpu::{DpuError, HyperionDpu};

/// A service request (flat compatibility surface; new code should prefer
/// the typed op groups and [`HyperionDpu::dispatch`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServiceRequest {
    /// KV put (LSM-backed).
    KvPut {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// KV get.
    KvGet {
        /// Key.
        key: u64,
    },
    /// Insert into the exported B+ tree.
    TreeInsert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Full on-DPU B+ tree traversal (one RPC total).
    TreeLookup {
        /// Key.
        key: u64,
    },
    /// Fetch one raw tree node (client-driven traversal building block).
    TreeNodeRead {
        /// Node LBA.
        lba: u64,
    },
    /// Append to the shared log.
    LogAppend {
        /// Entry payload.
        data: Bytes,
    },
    /// Read a log position.
    LogRead {
        /// Position.
        position: u64,
    },
    /// Read a whole file by path through the on-DPU file system.
    FileRead {
        /// Absolute path.
        path: String,
    },
    /// Scan a published columnar table.
    ColumnarScan {
        /// Table name (from [`HyperionDpu::publish_table`]).
        table: String,
        /// Projected columns.
        projection: Vec<String>,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
    /// Scan + aggregate in one request: only the scalar leaves the DPU
    /// (the §2.3 processing pipeline).
    ColumnarAggregate {
        /// Table name.
        table: String,
        /// Column to aggregate.
        column: String,
        /// Aggregate function.
        agg: hyperion_storage::compute::Agg,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
    /// Store a key/value pair on the KV-SSD namespace (device-native KV).
    KvSsdPut {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Bytes,
    },
    /// Look up a key on the KV-SSD namespace.
    KvSsdGet {
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// A service response.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServiceResponse {
    /// Generic acknowledgement.
    Ok,
    /// Optional value (KV / tree lookups).
    Value(Option<u64>),
    /// Raw node bytes.
    Node(Bytes),
    /// Assigned log position.
    Appended {
        /// Log position.
        position: u64,
    },
    /// Log entry.
    Entry(LogEntry),
    /// File contents.
    File(Bytes),
    /// Scan result with its statistics.
    Scan {
        /// Selected rows.
        batch: ColumnBatch,
        /// Row groups skipped/read and bytes touched.
        stats: ScanStats,
    },
    /// A single aggregate scalar (plus scan statistics).
    Aggregate {
        /// The computed result.
        result: hyperion_storage::compute::AggResult,
        /// Row groups skipped/read and bytes touched.
        stats: ScanStats,
    },
    /// KV-SSD value (None on miss).
    KvValue(Option<Bytes>),
}

/// Service errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// DPU not booted.
    Dpu(DpuError),
    /// B+ tree failure.
    Tree(hyperion_storage::btree::TreeError),
    /// LSM failure.
    Lsm(hyperion_storage::lsm::LsmError),
    /// Log failure.
    Log(hyperion_storage::corfu::CorfuError),
    /// File system failure.
    Fs(hyperion_storage::fs::FsError),
    /// Columnar failure.
    Columnar(hyperion_storage::columnar::ColumnarError),
    /// Unknown published table.
    NoSuchTable(String),
    /// Block-layer failure.
    Block(hyperion_storage::blockstore::BlockError),
    /// A subsystem the op needs is not present on this DPU (e.g. the
    /// boot sequence skipped it or it was taken offline). The request is
    /// well-formed; a retry only helps after the subsystem returns.
    Unavailable {
        /// Which subsystem was missing.
        what: &'static str,
    },
    /// The op completed degraded or hit a component running degraded
    /// (e.g. an unrecoverable media error on a device that has already
    /// remapped grown bad blocks). The service stays up; this request's
    /// data could not be served faithfully.
    Degraded {
        /// Which component is degraded.
        what: &'static str,
    },
    /// The DPU shed this request at admission: its inflight depth stood
    /// at `depth` against a limit of `limit` (see
    /// [`crate::admission::Admission`]). Typed backpressure — the caller
    /// should back off or redirect rather than retry immediately.
    Overloaded {
        /// Inflight depth at the admission decision.
        depth: usize,
        /// The watermark or bound that refused the request.
        limit: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Dpu(e) => write!(f, "dpu: {e}"),
            ServiceError::Tree(e) => write!(f, "btree: {e}"),
            ServiceError::Lsm(e) => write!(f, "lsm: {e}"),
            ServiceError::Log(e) => write!(f, "log: {e}"),
            ServiceError::Fs(e) => write!(f, "fs: {e}"),
            ServiceError::Columnar(e) => write!(f, "columnar: {e}"),
            ServiceError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ServiceError::Block(e) => write!(f, "block: {e}"),
            ServiceError::Unavailable { what } => write!(f, "unavailable: {what}"),
            ServiceError::Degraded { what } => write!(f, "degraded: {what}"),
            ServiceError::Overloaded { depth, limit } => {
                write!(f, "overloaded: inflight depth {depth} over limit {limit}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Dpu(e) => Some(e),
            ServiceError::Tree(e) => Some(e),
            ServiceError::Lsm(e) => Some(e),
            ServiceError::Log(e) => Some(e),
            ServiceError::Fs(e) => Some(e),
            ServiceError::Columnar(e) => Some(e),
            ServiceError::Block(e) => Some(e),
            _ => None,
        }
    }
}

/// Published columnar tables (name → footer metadata).
#[derive(Debug, Default)]
pub struct TableRegistry {
    tables: Vec<(String, FileMeta)>,
}

impl TableRegistry {
    fn get(&self, name: &str) -> Option<&FileMeta> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    fn insert(&mut self, name: String, meta: FileMeta) {
        self.tables.push((name, meta));
    }
}

// ---------------------------------------------------------------------------
// Typed op groups
// ---------------------------------------------------------------------------

/// Key-value operations: the LSM-backed KV export plus the device-native
/// KV-SSD namespace.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum KvOp {
    /// KV put (LSM-backed).
    Put {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// KV get.
    Get {
        /// Key.
        key: u64,
    },
    /// Store a key/value pair on the KV-SSD namespace.
    SsdPut {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Bytes,
    },
    /// Look up a key on the KV-SSD namespace.
    SsdGet {
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// B+ tree operations (the §2.4 pointer-chasing service).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum TreeOp {
    /// Insert into the exported B+ tree.
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Full on-DPU traversal (one RPC total).
    Lookup {
        /// Key.
        key: u64,
    },
    /// Fetch one raw node (client-driven traversal building block).
    NodeRead {
        /// Node LBA.
        lba: u64,
    },
}

/// Shared-log operations (the Corfu export).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum LogOp {
    /// Append to the shared log.
    Append {
        /// Entry payload.
        data: Bytes,
    },
    /// Read a log position.
    Read {
        /// Position.
        position: u64,
    },
}

/// File-system operations.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum FileOp {
    /// Read a whole file by path through the on-DPU file system.
    Read {
        /// Absolute path.
        path: String,
    },
}

/// Columnar analytics operations over published tables.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ColumnarOp {
    /// Scan a published table.
    Scan {
        /// Table name.
        table: String,
        /// Projected columns.
        projection: Vec<String>,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
    /// Scan + aggregate; only the scalar leaves the DPU.
    Aggregate {
        /// Table name.
        table: String,
        /// Column to aggregate.
        column: String,
        /// Aggregate function.
        agg: hyperion_storage::compute::Agg,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
}

/// The umbrella over every op group: what a transport endpoint routes on.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServiceOp {
    /// Key-value ops.
    Kv(KvOp),
    /// B+ tree ops.
    Tree(TreeOp),
    /// Shared-log ops.
    Log(LogOp),
    /// File-system ops.
    File(FileOp),
    /// Columnar analytics ops.
    Columnar(ColumnarOp),
}

impl From<KvOp> for ServiceOp {
    fn from(op: KvOp) -> ServiceOp {
        ServiceOp::Kv(op)
    }
}

impl From<TreeOp> for ServiceOp {
    fn from(op: TreeOp) -> ServiceOp {
        ServiceOp::Tree(op)
    }
}

impl From<LogOp> for ServiceOp {
    fn from(op: LogOp) -> ServiceOp {
        ServiceOp::Log(op)
    }
}

impl From<FileOp> for ServiceOp {
    fn from(op: FileOp) -> ServiceOp {
        ServiceOp::File(op)
    }
}

impl From<ColumnarOp> for ServiceOp {
    fn from(op: ColumnarOp) -> ServiceOp {
        ServiceOp::Columnar(op)
    }
}

impl From<ServiceRequest> for ServiceOp {
    fn from(req: ServiceRequest) -> ServiceOp {
        match req {
            ServiceRequest::KvPut { key, value } => ServiceOp::Kv(KvOp::Put { key, value }),
            ServiceRequest::KvGet { key } => ServiceOp::Kv(KvOp::Get { key }),
            ServiceRequest::KvSsdPut { key, value } => ServiceOp::Kv(KvOp::SsdPut { key, value }),
            ServiceRequest::KvSsdGet { key } => ServiceOp::Kv(KvOp::SsdGet { key }),
            ServiceRequest::TreeInsert { key, value } => {
                ServiceOp::Tree(TreeOp::Insert { key, value })
            }
            ServiceRequest::TreeLookup { key } => ServiceOp::Tree(TreeOp::Lookup { key }),
            ServiceRequest::TreeNodeRead { lba } => ServiceOp::Tree(TreeOp::NodeRead { lba }),
            ServiceRequest::LogAppend { data } => ServiceOp::Log(LogOp::Append { data }),
            ServiceRequest::LogRead { position } => ServiceOp::Log(LogOp::Read { position }),
            ServiceRequest::FileRead { path } => ServiceOp::File(FileOp::Read { path }),
            ServiceRequest::ColumnarScan {
                table,
                projection,
                predicate,
            } => ServiceOp::Columnar(ColumnarOp::Scan {
                table,
                projection,
                predicate,
            }),
            ServiceRequest::ColumnarAggregate {
                table,
                column,
                agg,
                predicate,
            } => ServiceOp::Columnar(ColumnarOp::Aggregate {
                table,
                column,
                agg,
                predicate,
            }),
        }
    }
}

impl KvOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            KvOp::Put { .. } => "kv.put",
            KvOp::Get { .. } => "kv.get",
            KvOp::SsdPut { .. } => "kvssd.put",
            KvOp::SsdGet { .. } => "kvssd.get",
        }
    }

    /// Runs this op on the DPU at `now`; returns the response and the
    /// instant the DPU finishes the work.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        self.dispatch_rec(dpu, now, None)
    }

    fn dispatch_rec(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
        rec: Option<&mut Recorder>,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        dpu.require_ready().map_err(ServiceError::Dpu)?;
        let kv_ssd_err = |e: hyperion_nvme::device::NvmeError| match e {
            // The device already retried and remapped what it could; the
            // namespace keeps serving other keys.
            hyperion_nvme::device::NvmeError::MediaError { .. } => ServiceError::Degraded {
                what: "kv-ssd namespace media",
            },
            e => ServiceError::Block(hyperion_storage::blockstore::BlockError::Device(
                e.to_string(),
            )),
        };
        match self {
            KvOp::Put { key, value } => {
                let t = dpu
                    .lsm
                    .put(&mut dpu.blocks, key, value, now)
                    .map_err(ServiceError::Lsm)?;
                Ok((ServiceResponse::Ok, t))
            }
            KvOp::Get { key } => {
                let (v, t) = dpu
                    .lsm
                    .get(&mut dpu.blocks, key, now)
                    .map_err(ServiceError::Lsm)?;
                Ok((ServiceResponse::Value(v), t))
            }
            KvOp::SsdPut { key, value } => {
                let cmd = hyperion_nvme::device::Command::KvPut { key, value };
                let c = match rec {
                    Some(rec) => dpu.kvssd.submit_traced(cmd, now, rec),
                    None => dpu.kvssd.submit(cmd, now),
                }
                .map_err(kv_ssd_err)?;
                Ok((ServiceResponse::Ok, c.done))
            }
            KvOp::SsdGet { key } => {
                let cmd = hyperion_nvme::device::Command::KvGet { key };
                let c = match rec {
                    Some(rec) => dpu.kvssd.submit_traced(cmd, now, rec),
                    None => dpu.kvssd.submit(cmd, now),
                }
                .map_err(kv_ssd_err)?;
                let value = match c.response {
                    hyperion_nvme::device::Response::Data(d) => Some(d),
                    _ => None,
                };
                Ok((ServiceResponse::KvValue(value), c.done))
            }
        }
    }
}

impl TreeOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            TreeOp::Insert { .. } => "tree.insert",
            TreeOp::Lookup { .. } => "tree.lookup",
            TreeOp::NodeRead { .. } => "tree.node_read",
        }
    }

    /// Runs this op on the DPU at `now`; returns the response and the
    /// instant the DPU finishes the work.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        dpu.require_ready().map_err(ServiceError::Dpu)?;
        match self {
            TreeOp::Insert { key, value } => {
                let tree = dpu
                    .btree
                    .as_mut()
                    .ok_or(ServiceError::Unavailable { what: "btree" })?;
                let t = tree
                    .insert(&mut dpu.blocks, key, value, now)
                    .map_err(ServiceError::Tree)?;
                Ok((ServiceResponse::Ok, t))
            }
            TreeOp::Lookup { key } => {
                let tree = dpu
                    .btree
                    .as_ref()
                    .ok_or(ServiceError::Unavailable { what: "btree" })?;
                let (v, t) = tree
                    .get(&mut dpu.blocks, key, now)
                    .map_err(ServiceError::Tree)?;
                Ok((ServiceResponse::Value(v), t))
            }
            TreeOp::NodeRead { lba } => {
                let (data, t) = dpu.blocks.read(lba, 1, now).map_err(ServiceError::Block)?;
                Ok((ServiceResponse::Node(Bytes::from(data)), t))
            }
        }
    }
}

impl LogOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            LogOp::Append { .. } => "log.append",
            LogOp::Read { .. } => "log.read",
        }
    }

    /// Runs this op on the DPU at `now`; returns the response and the
    /// instant the DPU finishes the work.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        dpu.require_ready().map_err(ServiceError::Dpu)?;
        match self {
            LogOp::Append { data } => {
                let (position, t) = dpu.log.append(&data, now).map_err(ServiceError::Log)?;
                Ok((ServiceResponse::Appended { position }, t))
            }
            LogOp::Read { position } => {
                let (entry, t) = dpu.log.read(position, now).map_err(ServiceError::Log)?;
                Ok((ServiceResponse::Entry(entry), t))
            }
        }
    }
}

impl FileOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            FileOp::Read { .. } => "file.read",
        }
    }

    /// Runs this op on the DPU at `now`; returns the response and the
    /// instant the DPU finishes the work.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        dpu.require_ready().map_err(ServiceError::Dpu)?;
        match self {
            FileOp::Read { path } => {
                let fs = dpu
                    .fs
                    .as_ref()
                    .ok_or(ServiceError::Unavailable { what: "fs" })?;
                let (data, t) = fs
                    .read_file(&mut dpu.blocks, &path, now)
                    .map_err(ServiceError::Fs)?;
                Ok((ServiceResponse::File(Bytes::from(data)), t))
            }
        }
    }
}

impl ColumnarOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            ColumnarOp::Scan { .. } => "columnar.scan",
            ColumnarOp::Aggregate { .. } => "columnar.aggregate",
        }
    }

    /// Runs this op on the DPU at `now`, resolving tables against the
    /// DPU's own published set; returns the response and the instant the
    /// DPU finishes the work.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        dpu.require_ready().map_err(ServiceError::Dpu)?;
        match self {
            ColumnarOp::Scan {
                table,
                projection,
                predicate,
            } => {
                let meta = dpu
                    .tables
                    .get(&table)
                    .ok_or_else(|| ServiceError::NoSuchTable(table.clone()))?
                    .clone();
                let proj: Vec<&str> = projection.iter().map(|s| s.as_str()).collect();
                let (batch, stats, t) =
                    columnar::scan(&mut dpu.blocks, &meta, &proj, predicate.as_ref(), now)
                        .map_err(ServiceError::Columnar)?;
                Ok((ServiceResponse::Scan { batch, stats }, t))
            }
            ColumnarOp::Aggregate {
                table,
                column,
                agg,
                predicate,
            } => {
                let meta = dpu
                    .tables
                    .get(&table)
                    .ok_or_else(|| ServiceError::NoSuchTable(table.clone()))?
                    .clone();
                let (batch, stats, t) = columnar::scan(
                    &mut dpu.blocks,
                    &meta,
                    &[column.as_str()],
                    predicate.as_ref(),
                    now,
                )
                .map_err(ServiceError::Columnar)?;
                let result = hyperion_storage::compute::aggregate(&batch, &column, agg)
                    .map_err(ServiceError::Columnar)?;
                // The aggregation pass itself: one fabric pipeline sweep
                // over the decoded values at memory bandwidth.
                let sweep = hyperion_sim::serialization_delay(
                    batch.num_rows() as u64 * 8,
                    hyperion_fabric::params::HBM_BANDWIDTH_BPS,
                );
                Ok((ServiceResponse::Aggregate { result, stats }, t + sweep))
            }
        }
    }
}

impl ServiceOp {
    /// Telemetry/report label for this op.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceOp::Kv(op) => op.label(),
            ServiceOp::Tree(op) => op.label(),
            ServiceOp::Log(op) => op.label(),
            ServiceOp::File(op) => op.label(),
            ServiceOp::Columnar(op) => op.label(),
        }
    }

    /// The op-group label SLO digests aggregate under (`kv`, `tree`,
    /// `log`, `file`, `columnar`): coarser than [`ServiceOp::label`], one
    /// bucket per service family.
    pub fn group(&self) -> &'static str {
        match self {
            ServiceOp::Kv(_) => "kv",
            ServiceOp::Tree(_) => "tree",
            ServiceOp::Log(_) => "log",
            ServiceOp::File(_) => "file",
            ServiceOp::Columnar(_) => "columnar",
        }
    }

    /// Routes to the owning group's dispatch.
    pub fn dispatch(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        self.dispatch_rec(dpu, now, None)
    }

    fn dispatch_rec(
        self,
        dpu: &mut HyperionDpu,
        now: Ns,
        mut rec: Option<&mut Recorder>,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        // Admission first: a shed request costs the DPU nothing but the
        // decision itself. Off (None) by default — the baseline path does
        // not even reap.
        if let Some(adm) = dpu.admission.as_mut() {
            if let Err(overload) = adm.admit(now) {
                dpu.counters.bump("shed");
                if let Some(rec) = rec.as_deref_mut() {
                    rec.bump("service:shed");
                }
                return Err(ServiceError::Overloaded {
                    depth: overload.depth,
                    limit: overload.limit,
                });
            }
        }
        dpu.counters.bump("served");
        let result = match self {
            ServiceOp::Kv(op) => op.dispatch_rec(dpu, now, rec),
            ServiceOp::Tree(op) => op.dispatch(dpu, now),
            ServiceOp::Log(op) => op.dispatch(dpu, now),
            ServiceOp::File(op) => op.dispatch(dpu, now),
            ServiceOp::Columnar(op) => op.dispatch(dpu, now),
        };
        if let (Some(adm), Ok((_, done))) = (dpu.admission.as_mut(), &result) {
            adm.record(*done);
        }
        result
    }
}

impl HyperionDpu {
    /// Publishes a columnar table on the structure volume; it becomes
    /// scannable via [`ColumnarOp::Scan`].
    ///
    /// The metadata is recorded both on the DPU itself (what
    /// [`HyperionDpu::dispatch`] resolves against) and in the caller's
    /// `registry` (the older lookup surface that [`HyperionDpu::serve`]
    /// accepts).
    pub fn publish_table(
        &mut self,
        registry: &mut TableRegistry,
        name: impl Into<String>,
        batch: &ColumnBatch,
        rows_per_group: usize,
        now: Ns,
    ) -> Result<Ns, ServiceError> {
        let name = name.into();
        let (meta, t) = columnar::write_file(&mut self.blocks, batch, rows_per_group, now)
            .map_err(ServiceError::Columnar)?;
        self.tables.insert(name.clone(), meta.clone());
        registry.insert(name, meta);
        Ok(t)
    }

    /// Runs one typed op at `now`; returns the response and the instant
    /// the DPU finishes the work. Accepts any op group (or a legacy
    /// [`ServiceRequest`]) via `Into<ServiceOp>`.
    pub fn dispatch(
        &mut self,
        now: Ns,
        op: impl Into<ServiceOp>,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        op.into().dispatch(self, now)
    }

    /// [`HyperionDpu::dispatch`] with telemetry: a [`Component::Service`]
    /// span over the op, a per-op latency sample under the op's label, a
    /// fabric slot-occupancy gauge, and nested device spans where the op
    /// touches the KV-SSD.
    pub fn dispatch_traced(
        &mut self,
        now: Ns,
        op: impl Into<ServiceOp>,
        rec: &mut Recorder,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        let op = op.into();
        let label = op.label();
        rec.gauge(
            "fabric:slots_occupied",
            self.fabric.slots.occupied_slots() as u64,
        );
        let span = rec.open(Component::Service, label, now);
        match op.dispatch_rec(self, now, Some(rec)) {
            Ok((resp, t)) => {
                rec.close(span, t);
                rec.record_op(label, t.saturating_sub(now));
                Ok((resp, t))
            }
            Err(e) => {
                rec.close(span, now);
                Err(e)
            }
        }
    }

    /// Serves one request at `now`; returns the response and the instant
    /// the DPU finishes the work.
    ///
    /// Compatibility wrapper over [`HyperionDpu::dispatch`]: columnar
    /// table names are resolved against the DPU's published set, with
    /// `registry` consulted as a fallback for tables published through an
    /// external registry only.
    pub fn serve(
        &mut self,
        registry: &TableRegistry,
        request: ServiceRequest,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        // Mirror externally-registered metadata so the typed path sees it.
        let table = match &request {
            ServiceRequest::ColumnarScan { table, .. } => Some(table),
            ServiceRequest::ColumnarAggregate { table, .. } => Some(table),
            _ => None,
        };
        if let Some(table) = table {
            if self.tables.get(table).is_none() {
                if let Some(meta) = registry.get(table) {
                    self.tables.insert(table.clone(), meta.clone());
                }
            }
        }
        self.dispatch(now, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted() -> HyperionDpu {
        let mut dpu = crate::dpu::DpuBuilder::new().auth_key(1).build();
        dpu.boot(Ns::ZERO).unwrap();
        dpu
    }

    #[test]
    fn kv_service_round_trip() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (_, t) = dpu
            .serve(&reg, ServiceRequest::KvPut { key: 5, value: 50 }, t)
            .unwrap();
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::KvGet { key: 5 }, t)
            .unwrap();
        let ServiceResponse::Value(v) = resp else {
            panic!("expected value");
        };
        assert_eq!(v, Some(50));
    }

    #[test]
    fn typed_dispatch_matches_serve() {
        let mut dpu = booted();
        let t = dpu.booted_at();
        let (_, t) = dpu.dispatch(t, KvOp::Put { key: 9, value: 90 }).unwrap();
        let (resp, _) = dpu.dispatch(t, KvOp::Get { key: 9 }).unwrap();
        let ServiceResponse::Value(v) = resp else {
            panic!("expected value");
        };
        assert_eq!(v, Some(90));
    }

    #[test]
    fn dispatch_traced_records_span_and_op() {
        let mut dpu = booted();
        let t = dpu.booted_at();
        let mut rec = hyperion_telemetry::Recorder::new("svc");
        let (_, t2) = dpu
            .dispatch_traced(t, KvOp::Put { key: 1, value: 2 }, &mut rec)
            .unwrap();
        assert!(t2 >= t);
        assert_eq!(rec.open_spans(), 0);
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "kv.put");
        let ops: Vec<_> = rec.op_histograms().collect();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, "kv.put");
        assert_eq!(ops[0].1.count(), 1);
    }

    #[test]
    fn kvssd_traced_dispatch_nests_device_span() {
        let mut dpu = booted();
        let t = dpu.booted_at();
        let mut rec = hyperion_telemetry::Recorder::new("svc");
        dpu.dispatch_traced(
            t,
            KvOp::SsdPut {
                key: b"k".to_vec(),
                value: Bytes::from_static(b"v"),
            },
            &mut rec,
        )
        .unwrap();
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "kvssd.put");
        assert_eq!(spans[1].name, "nvme:kv_put");
        assert_eq!(spans[1].parent, Some(hyperion_telemetry::SpanId::index(0)));
    }

    #[test]
    fn missing_subsystems_surface_typed_unavailable_not_panics() {
        let mut dpu = booted();
        let t = dpu.booted_at();
        // Take the tree and fs offline: dispatch must degrade to a typed
        // error instead of panicking on the old `expect` sites.
        dpu.btree = None;
        dpu.fs = None;
        let tree = dpu.dispatch(t, TreeOp::Lookup { key: 1 });
        assert!(matches!(
            tree,
            Err(ServiceError::Unavailable { what: "btree" })
        ));
        let ins = dpu.dispatch(t, TreeOp::Insert { key: 1, value: 2 });
        assert!(matches!(
            ins,
            Err(ServiceError::Unavailable { what: "btree" })
        ));
        let file = dpu.dispatch(t, FileOp::Read { path: "/x".into() });
        assert!(matches!(
            file,
            Err(ServiceError::Unavailable { what: "fs" })
        ));
    }

    #[test]
    fn admission_sheds_with_typed_overloaded() {
        let mut dpu = crate::dpu::DpuBuilder::new()
            .auth_key(1)
            .admission(crate::admission::AdmissionConfig {
                max_inflight: 4,
                high_watermark: 2,
                low_watermark: 1,
            })
            .build();
        dpu.boot(Ns::ZERO).unwrap();
        let t = dpu.booted_at();
        // Two flash-backed requests land at the same instant: their NVMe
        // programs are still inflight when the third request arrives, so
        // it trips the high watermark. (Pure-memtable ops complete at
        // their issue instant and would never accumulate depth.)
        let ssd_put = |k: &[u8]| KvOp::SsdPut {
            key: k.to_vec(),
            value: Bytes::from_static(b"v"),
        };
        dpu.dispatch(t, ssd_put(b"a")).unwrap();
        dpu.dispatch(t, ssd_put(b"b")).unwrap();
        match dpu.dispatch(t, KvOp::Put { key: 3, value: 3 }) {
            Err(ServiceError::Overloaded { depth, limit }) => {
                assert_eq!(depth, 2);
                assert_eq!(limit, 2);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(dpu.counters.get("shed"), 1);
        // Far in the future the backlog has drained; admission resumes.
        let later = t + Ns::from_millis(100);
        dpu.dispatch(later, KvOp::Put { key: 3, value: 3 }).unwrap();
    }

    #[test]
    fn service_errors_chain_their_sources() {
        use std::error::Error;
        let e = ServiceError::Dpu(DpuError::NotReady);
        assert!(e.source().is_some(), "wrapped errors must chain");
        let e = ServiceError::Overloaded { depth: 3, limit: 2 };
        assert!(e.source().is_none(), "leaf errors have no source");
        assert!(e.to_string().contains("overloaded"));
    }

    #[test]
    fn tree_lookup_and_node_read_agree() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let mut t = dpu.booted_at();
        for k in 0..500u64 {
            let (_, t2) = dpu
                .serve(
                    &reg,
                    ServiceRequest::TreeInsert {
                        key: k,
                        value: k * 3,
                    },
                    t,
                )
                .unwrap();
            t = t2;
        }
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::TreeLookup { key: 123 }, t)
            .unwrap();
        let ServiceResponse::Value(v) = resp else {
            panic!("expected value");
        };
        assert_eq!(v, Some(369));
        // Client-driven path: fetch the root node raw.
        let root = dpu.btree.as_ref().unwrap().root_lba();
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::TreeNodeRead { lba: root }, t)
            .unwrap();
        let ServiceResponse::Node(data) = resp else {
            panic!("expected node");
        };
        assert_eq!(data.len(), 4096);
    }

    #[test]
    fn log_service_appends_and_reads() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (resp, t) = dpu
            .serve(
                &reg,
                ServiceRequest::LogAppend {
                    data: Bytes::from_static(b"entry"),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Appended { position } = resp else {
            panic!("expected position");
        };
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::LogRead { position }, t)
            .unwrap();
        let ServiceResponse::Entry(LogEntry::Data(d)) = resp else {
            panic!("expected entry");
        };
        assert_eq!(d.as_ref(), b"entry");
    }

    #[test]
    fn file_service_reads_fs_files() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let mut t = dpu.booted_at();
        {
            let fs = dpu.fs.as_mut().unwrap();
            let (_, t2) = fs
                .create_file(&mut dpu.blocks, "/hello", b"cpu-free", t)
                .unwrap();
            t = t2;
        }
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::FileRead {
                    path: "/hello".into(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::File(data) = resp else {
            panic!("expected file");
        };
        assert_eq!(data.as_ref(), b"cpu-free");
    }

    #[test]
    fn kvssd_service_round_trips() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (_, t) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdPut {
                    key: b"user:7".to_vec(),
                    value: Bytes::from_static(b"profile-bytes"),
                },
                t,
            )
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdGet {
                    key: b"user:7".to_vec(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::KvValue(v) = resp else {
            panic!("expected kv value");
        };
        assert_eq!(v, Some(Bytes::from_static(b"profile-bytes")));
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdGet {
                    key: b"missing".to_vec(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::KvValue(v) = resp else {
            panic!("expected kv value");
        };
        assert_eq!(v, None);
    }

    #[test]
    fn columnar_aggregate_returns_only_a_scalar() {
        let mut dpu = booted();
        let mut reg = TableRegistry::default();
        let batch = ColumnBatch::new(
            vec!["k".into(), "v".into()],
            vec![(0..1000u64).collect(), (0..1000u64).collect()],
        )
        .unwrap();
        let t = dpu
            .publish_table(&mut reg, "agg", &batch, 250, dpu.booted_at())
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::ColumnarAggregate {
                    table: "agg".into(),
                    column: "v".into(),
                    agg: hyperion_storage::compute::Agg::Sum,
                    predicate: Some(Predicate::between("v", 0, 99)),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Aggregate { result, stats } = resp else {
            panic!("expected aggregate");
        };
        assert_eq!(result.value, (0..100u64).sum::<u64>());
        assert_eq!(stats.groups_skipped, 3);
    }

    #[test]
    fn columnar_service_scans_published_tables() {
        let mut dpu = booted();
        let mut reg = TableRegistry::default();
        let batch = ColumnBatch::new(
            vec!["k".into(), "v".into()],
            vec![
                (0..1000u64).collect(),
                (0..1000u64).map(|x| x * 2).collect(),
            ],
        )
        .unwrap();
        let t = dpu
            .publish_table(&mut reg, "sales", &batch, 250, dpu.booted_at())
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::ColumnarScan {
                    table: "sales".into(),
                    projection: vec!["v".into()],
                    predicate: Some(Predicate::between("k", 100, 199)),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Scan { batch, stats } = resp else {
            panic!("expected scan");
        };
        assert_eq!(batch.num_rows(), 100);
        assert!(stats.groups_skipped >= 2);
        let unknown = dpu.serve(
            &reg,
            ServiceRequest::ColumnarScan {
                table: "missing".into(),
                projection: vec![],
                predicate: None,
            },
            t,
        );
        assert!(matches!(unknown, Err(ServiceError::NoSuchTable(_))));
    }

    #[test]
    fn typed_columnar_dispatch_uses_dpu_tables() {
        let mut dpu = booted();
        let mut reg = TableRegistry::default();
        let batch = ColumnBatch::new(vec!["k".into()], vec![(0..100u64).collect()]).unwrap();
        let t = dpu
            .publish_table(&mut reg, "typed", &batch, 50, dpu.booted_at())
            .unwrap();
        // No registry in sight: the DPU resolves its own published set.
        let (resp, _) = dpu
            .dispatch(
                t,
                ColumnarOp::Scan {
                    table: "typed".into(),
                    projection: vec!["k".into()],
                    predicate: None,
                },
            )
            .unwrap();
        let ServiceResponse::Scan { batch, .. } = resp else {
            panic!("expected scan");
        };
        assert_eq!(batch.num_rows(), 100);
    }
}
