//! The DPU's RPC service surface.
//!
//! Paper §2.4: network-attached SSDs exporting "application-defined,
//! high-level, fault-tolerant data structures and abstractions ... such as
//! trees, lookup-tables, distributed/shared ordered logs, atomic writes
//! with transactional interfaces", behind a Willow-style specializable RPC
//! interface. Each request runs entirely on the DPU: the returned
//! completion time is the *server work* a transport charges between
//! request arrival and response departure — with no host CPU anywhere.
//!
//! `TreeNodeRead` exists for the baseline side of experiment E6: a
//! client-driven pointer chase fetches one node per RPC, while
//! `TreeLookup` does the whole traversal in one RPC.

use bytes::Bytes;
use hyperion_sim::time::Ns;
use hyperion_storage::columnar::{self, ColumnBatch, FileMeta, Predicate, ScanStats};
use hyperion_storage::corfu::LogEntry;

use crate::dpu::{DpuError, HyperionDpu};

/// A service request.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// KV put (LSM-backed).
    KvPut {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// KV get.
    KvGet {
        /// Key.
        key: u64,
    },
    /// Insert into the exported B+ tree.
    TreeInsert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Full on-DPU B+ tree traversal (one RPC total).
    TreeLookup {
        /// Key.
        key: u64,
    },
    /// Fetch one raw tree node (client-driven traversal building block).
    TreeNodeRead {
        /// Node LBA.
        lba: u64,
    },
    /// Append to the shared log.
    LogAppend {
        /// Entry payload.
        data: Bytes,
    },
    /// Read a log position.
    LogRead {
        /// Position.
        position: u64,
    },
    /// Read a whole file by path through the on-DPU file system.
    FileRead {
        /// Absolute path.
        path: String,
    },
    /// Scan a published columnar table.
    ColumnarScan {
        /// Table name (from [`HyperionDpu::publish_table`]).
        table: String,
        /// Projected columns.
        projection: Vec<String>,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
    /// Scan + aggregate in one request: only the scalar leaves the DPU
    /// (the §2.3 processing pipeline).
    ColumnarAggregate {
        /// Table name.
        table: String,
        /// Column to aggregate.
        column: String,
        /// Aggregate function.
        agg: hyperion_storage::compute::Agg,
        /// Optional pushed-down predicate.
        predicate: Option<Predicate>,
    },
    /// Store a key/value pair on the KV-SSD namespace (device-native KV).
    KvSsdPut {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Bytes,
    },
    /// Look up a key on the KV-SSD namespace.
    KvSsdGet {
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// A service response.
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// Generic acknowledgement.
    Ok,
    /// Optional value (KV / tree lookups).
    Value(Option<u64>),
    /// Raw node bytes.
    Node(Bytes),
    /// Assigned log position.
    Appended {
        /// Log position.
        position: u64,
    },
    /// Log entry.
    Entry(LogEntry),
    /// File contents.
    File(Bytes),
    /// Scan result with its statistics.
    Scan {
        /// Selected rows.
        batch: ColumnBatch,
        /// Row groups skipped/read and bytes touched.
        stats: ScanStats,
    },
    /// A single aggregate scalar (plus scan statistics).
    Aggregate {
        /// The computed result.
        result: hyperion_storage::compute::AggResult,
        /// Row groups skipped/read and bytes touched.
        stats: ScanStats,
    },
    /// KV-SSD value (None on miss).
    KvValue(Option<Bytes>),
}

/// Service errors.
#[derive(Debug)]
pub enum ServiceError {
    /// DPU not booted.
    Dpu(DpuError),
    /// B+ tree failure.
    Tree(hyperion_storage::btree::TreeError),
    /// LSM failure.
    Lsm(hyperion_storage::lsm::LsmError),
    /// Log failure.
    Log(hyperion_storage::corfu::CorfuError),
    /// File system failure.
    Fs(hyperion_storage::fs::FsError),
    /// Columnar failure.
    Columnar(hyperion_storage::columnar::ColumnarError),
    /// Unknown published table.
    NoSuchTable(String),
    /// Block-layer failure.
    Block(hyperion_storage::blockstore::BlockError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Dpu(e) => write!(f, "dpu: {e}"),
            ServiceError::Tree(e) => write!(f, "btree: {e}"),
            ServiceError::Lsm(e) => write!(f, "lsm: {e}"),
            ServiceError::Log(e) => write!(f, "log: {e}"),
            ServiceError::Fs(e) => write!(f, "fs: {e}"),
            ServiceError::Columnar(e) => write!(f, "columnar: {e}"),
            ServiceError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ServiceError::Block(e) => write!(f, "block: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Published columnar tables (name → footer metadata).
#[derive(Debug, Default)]
pub struct TableRegistry {
    tables: Vec<(String, FileMeta)>,
}

impl TableRegistry {
    fn get(&self, name: &str) -> Option<&FileMeta> {
        self.tables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }
}

impl HyperionDpu {
    /// Publishes a columnar table on the structure volume; it becomes
    /// scannable via [`ServiceRequest::ColumnarScan`].
    pub fn publish_table(
        &mut self,
        registry: &mut TableRegistry,
        name: impl Into<String>,
        batch: &ColumnBatch,
        rows_per_group: usize,
        now: Ns,
    ) -> Result<Ns, ServiceError> {
        let (meta, t) = columnar::write_file(&mut self.blocks, batch, rows_per_group, now)
            .map_err(ServiceError::Columnar)?;
        registry.tables.push((name.into(), meta));
        Ok(t)
    }

    /// Serves one request at `now`; returns the response and the instant
    /// the DPU finishes the work.
    pub fn serve(
        &mut self,
        registry: &TableRegistry,
        request: ServiceRequest,
        now: Ns,
    ) -> Result<(ServiceResponse, Ns), ServiceError> {
        self.require_ready().map_err(ServiceError::Dpu)?;
        self.counters.bump("served");
        match request {
            ServiceRequest::KvPut { key, value } => {
                let t = self
                    .lsm
                    .put(&mut self.blocks, key, value, now)
                    .map_err(ServiceError::Lsm)?;
                Ok((ServiceResponse::Ok, t))
            }
            ServiceRequest::KvGet { key } => {
                let (v, t) = self
                    .lsm
                    .get(&mut self.blocks, key, now)
                    .map_err(ServiceError::Lsm)?;
                Ok((ServiceResponse::Value(v), t))
            }
            ServiceRequest::TreeInsert { key, value } => {
                let tree = self.btree.as_mut().expect("boot created the tree");
                let t = tree
                    .insert(&mut self.blocks, key, value, now)
                    .map_err(ServiceError::Tree)?;
                Ok((ServiceResponse::Ok, t))
            }
            ServiceRequest::TreeLookup { key } => {
                let tree = self.btree.as_ref().expect("boot created the tree");
                let (v, t) = tree
                    .get(&mut self.blocks, key, now)
                    .map_err(ServiceError::Tree)?;
                Ok((ServiceResponse::Value(v), t))
            }
            ServiceRequest::TreeNodeRead { lba } => {
                let (data, t) = self
                    .blocks
                    .read(lba, 1, now)
                    .map_err(ServiceError::Block)?;
                Ok((ServiceResponse::Node(Bytes::from(data)), t))
            }
            ServiceRequest::LogAppend { data } => {
                let (position, t) = self.log.append(&data, now).map_err(ServiceError::Log)?;
                Ok((ServiceResponse::Appended { position }, t))
            }
            ServiceRequest::LogRead { position } => {
                let (entry, t) = self.log.read(position, now).map_err(ServiceError::Log)?;
                Ok((ServiceResponse::Entry(entry), t))
            }
            ServiceRequest::FileRead { path } => {
                let fs = self.fs.as_ref().expect("boot formatted the fs");
                let (data, t) = fs
                    .read_file(&mut self.blocks, &path, now)
                    .map_err(ServiceError::Fs)?;
                Ok((ServiceResponse::File(Bytes::from(data)), t))
            }
            ServiceRequest::ColumnarScan {
                table,
                projection,
                predicate,
            } => {
                let meta = registry
                    .get(&table)
                    .ok_or_else(|| ServiceError::NoSuchTable(table.clone()))?;
                let proj: Vec<&str> = projection.iter().map(|s| s.as_str()).collect();
                let (batch, stats, t) = columnar::scan(
                    &mut self.blocks,
                    meta,
                    &proj,
                    predicate.as_ref(),
                    now,
                )
                .map_err(ServiceError::Columnar)?;
                Ok((ServiceResponse::Scan { batch, stats }, t))
            }
            ServiceRequest::ColumnarAggregate {
                table,
                column,
                agg,
                predicate,
            } => {
                let meta = registry
                    .get(&table)
                    .ok_or_else(|| ServiceError::NoSuchTable(table.clone()))?;
                let (batch, stats, t) = columnar::scan(
                    &mut self.blocks,
                    meta,
                    &[column.as_str()],
                    predicate.as_ref(),
                    now,
                )
                .map_err(ServiceError::Columnar)?;
                let result = hyperion_storage::compute::aggregate(&batch, &column, agg)
                    .map_err(ServiceError::Columnar)?;
                // The aggregation pass itself: one fabric pipeline sweep
                // over the decoded values at memory bandwidth.
                let sweep = hyperion_sim::serialization_delay(
                    batch.num_rows() as u64 * 8,
                    hyperion_fabric::params::HBM_BANDWIDTH_BPS,
                );
                Ok((ServiceResponse::Aggregate { result, stats }, t + sweep))
            }
            ServiceRequest::KvSsdPut { key, value } => {
                let c = self
                    .kvssd
                    .submit(hyperion_nvme::device::Command::KvPut { key, value }, now)
                    .map_err(|e| ServiceError::Block(
                        hyperion_storage::blockstore::BlockError::Device(e.to_string()),
                    ))?;
                Ok((ServiceResponse::Ok, c.done))
            }
            ServiceRequest::KvSsdGet { key } => {
                let c = self
                    .kvssd
                    .submit(hyperion_nvme::device::Command::KvGet { key }, now)
                    .map_err(|e| ServiceError::Block(
                        hyperion_storage::blockstore::BlockError::Device(e.to_string()),
                    ))?;
                let value = match c.response {
                    hyperion_nvme::device::Response::Data(d) => Some(d),
                    _ => None,
                };
                Ok((ServiceResponse::KvValue(value), c.done))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted() -> HyperionDpu {
        let mut dpu = HyperionDpu::assemble(1);
        dpu.boot(Ns::ZERO).unwrap();
        dpu
    }

    #[test]
    fn kv_service_round_trip() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (_, t) = dpu
            .serve(&reg, ServiceRequest::KvPut { key: 5, value: 50 }, t)
            .unwrap();
        let (resp, _) = dpu.serve(&reg, ServiceRequest::KvGet { key: 5 }, t).unwrap();
        let ServiceResponse::Value(v) = resp else {
            panic!("expected value");
        };
        assert_eq!(v, Some(50));
    }

    #[test]
    fn tree_lookup_and_node_read_agree() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let mut t = dpu.booted_at();
        for k in 0..500u64 {
            let (_, t2) = dpu
                .serve(&reg, ServiceRequest::TreeInsert { key: k, value: k * 3 }, t)
                .unwrap();
            t = t2;
        }
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::TreeLookup { key: 123 }, t)
            .unwrap();
        let ServiceResponse::Value(v) = resp else {
            panic!("expected value");
        };
        assert_eq!(v, Some(369));
        // Client-driven path: fetch the root node raw.
        let root = dpu.btree.as_ref().unwrap().root_lba();
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::TreeNodeRead { lba: root }, t)
            .unwrap();
        let ServiceResponse::Node(data) = resp else {
            panic!("expected node");
        };
        assert_eq!(data.len(), 4096);
    }

    #[test]
    fn log_service_appends_and_reads() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (resp, t) = dpu
            .serve(
                &reg,
                ServiceRequest::LogAppend {
                    data: Bytes::from_static(b"entry"),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Appended { position } = resp else {
            panic!("expected position");
        };
        let (resp, _) = dpu
            .serve(&reg, ServiceRequest::LogRead { position }, t)
            .unwrap();
        let ServiceResponse::Entry(LogEntry::Data(d)) = resp else {
            panic!("expected entry");
        };
        assert_eq!(d.as_ref(), b"entry");
    }

    #[test]
    fn file_service_reads_fs_files() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let mut t = dpu.booted_at();
        {
            let fs = dpu.fs.as_mut().unwrap();
            let (_, t2) = fs
                .create_file(&mut dpu.blocks, "/hello", b"cpu-free", t)
                .unwrap();
            t = t2;
        }
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::FileRead {
                    path: "/hello".into(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::File(data) = resp else {
            panic!("expected file");
        };
        assert_eq!(data.as_ref(), b"cpu-free");
    }

    #[test]
    fn kvssd_service_round_trips() {
        let mut dpu = booted();
        let reg = TableRegistry::default();
        let t = dpu.booted_at();
        let (_, t) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdPut {
                    key: b"user:7".to_vec(),
                    value: Bytes::from_static(b"profile-bytes"),
                },
                t,
            )
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdGet {
                    key: b"user:7".to_vec(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::KvValue(v) = resp else {
            panic!("expected kv value");
        };
        assert_eq!(v, Some(Bytes::from_static(b"profile-bytes")));
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::KvSsdGet {
                    key: b"missing".to_vec(),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::KvValue(v) = resp else {
            panic!("expected kv value");
        };
        assert_eq!(v, None);
    }

    #[test]
    fn columnar_aggregate_returns_only_a_scalar() {
        let mut dpu = booted();
        let mut reg = TableRegistry::default();
        let batch = ColumnBatch::new(
            vec!["k".into(), "v".into()],
            vec![(0..1000u64).collect(), (0..1000u64).collect()],
        )
        .unwrap();
        let t = dpu
            .publish_table(&mut reg, "agg", &batch, 250, dpu.booted_at())
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::ColumnarAggregate {
                    table: "agg".into(),
                    column: "v".into(),
                    agg: hyperion_storage::compute::Agg::Sum,
                    predicate: Some(Predicate::between("v", 0, 99)),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Aggregate { result, stats } = resp else {
            panic!("expected aggregate");
        };
        assert_eq!(result.value, (0..100u64).sum::<u64>());
        assert_eq!(stats.groups_skipped, 3);
    }

    #[test]
    fn columnar_service_scans_published_tables() {
        let mut dpu = booted();
        let mut reg = TableRegistry::default();
        let batch = ColumnBatch::new(
            vec!["k".into(), "v".into()],
            vec![(0..1000u64).collect(), (0..1000u64).map(|x| x * 2).collect()],
        )
        .unwrap();
        let t = dpu
            .publish_table(&mut reg, "sales", &batch, 250, dpu.booted_at())
            .unwrap();
        let (resp, _) = dpu
            .serve(
                &reg,
                ServiceRequest::ColumnarScan {
                    table: "sales".into(),
                    projection: vec!["v".into()],
                    predicate: Some(Predicate::between("k", 100, 199)),
                },
                t,
            )
            .unwrap();
        let ServiceResponse::Scan { batch, stats } = resp else {
            panic!("expected scan");
        };
        assert_eq!(batch.num_rows(), 100);
        assert!(stats.groups_skipped >= 2);
        let unknown = dpu.serve(
            &reg,
            ServiceRequest::ColumnarScan {
                table: "missing".into(),
                projection: vec![],
                predicate: None,
            },
            t,
        );
        assert!(matches!(unknown, Err(ServiceError::NoSuchTable(_))));
    }
}
