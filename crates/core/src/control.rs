//! The OS-shell / network control plane.
//!
//! Paper §2: "We are in the process of developing an OS-shell and control
//! path over the network that can program the FPGA without a CPU,
//! leveraging Partial Dynamic Reconfiguration through the Internal
//! Configuration Access Port (ICAP)" and §2.2: "Hyperion can run a
//! privileged configuration kernel that can receive authorized, encrypted
//! FPGA bitstreams over a certain control network port and assign slices
//! to it."
//!
//! [`ControlPlane`] is that configuration kernel: it accepts control
//! requests (deploy an eBPF kernel, evict a slot, query status), runs the
//! full verify → compile → sign → ICAP pipeline, and keeps the registry of
//! live hardware pipelines per slot.

use std::collections::HashMap;

use hyperion_ebpf::vm::Vm;
use hyperion_ebpf::{assemble, verify};
use hyperion_fabric::slots::{SlotError, SlotId};
use hyperion_hdl::{compile, to_bitstream, HwPipeline};
use hyperion_sim::time::Ns;

use crate::dpu::{DpuError, HyperionDpu};

/// Control-plane requests (what arrives on the control port).
#[derive(Debug)]
pub enum ControlRequest {
    /// Deploy an eBPF kernel: assemble, verify, compile, program a slot.
    Deploy {
        /// Kernel name.
        name: String,
        /// eBPF assembly source.
        source: String,
        /// Declared minimum context length.
        ctx_min_len: u64,
    },
    /// Evict the kernel in `slot`.
    Evict(SlotId),
    /// Query DPU status.
    Status,
}

/// Control-plane responses.
#[derive(Debug)]
pub enum ControlResponse {
    /// Kernel deployed: where it landed and when it went live.
    Deployed {
        /// The slot.
        slot: SlotId,
        /// Instant the partial reconfiguration completed.
        live_at: Ns,
    },
    /// Slot evicted.
    Evicted,
    /// Status report.
    Status {
        /// Slots occupied / total.
        slots_used: usize,
        /// Total slots.
        slots_total: usize,
        /// Reconfigurations performed.
        reconfigs: u64,
    },
}

/// Control-plane errors.
#[derive(Debug)]
pub enum ControlError {
    /// eBPF assembly failed.
    Asm(hyperion_ebpf::AsmError),
    /// Verification rejected the program.
    Verify(hyperion_ebpf::VerifyError),
    /// Compilation failed.
    Compile(hyperion_hdl::CompileError),
    /// Slot management failed (auth, fit, occupancy).
    Slot(SlotError),
    /// DPU not ready.
    Dpu(DpuError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Asm(e) => write!(f, "assembler: {e}"),
            ControlError::Verify(e) => write!(f, "verifier: {e}"),
            ControlError::Compile(e) => write!(f, "compiler: {e}"),
            ControlError::Slot(e) => write!(f, "slot manager: {e}"),
            ControlError::Dpu(e) => write!(f, "dpu: {e}"),
        }
    }
}

impl std::error::Error for ControlError {}

/// A deployed kernel: the pipeline plus its VM state (maps etc.).
#[derive(Debug)]
pub struct DeployedKernel {
    /// The hardware pipeline.
    pub pipeline: HwPipeline,
    /// Functional state (maps, trace) for this kernel.
    pub vm: Vm,
}

/// The configuration kernel.
#[derive(Debug, Default)]
pub struct ControlPlane {
    auth_key: u64,
    kernels: HashMap<usize, DeployedKernel>,
}

impl ControlPlane {
    /// Creates a control plane holding the bitstream signing key.
    pub fn new(auth_key: u64) -> ControlPlane {
        ControlPlane {
            auth_key,
            kernels: HashMap::new(),
        }
    }

    /// Handles one control request against the DPU at `now`.
    pub fn handle(
        &mut self,
        dpu: &mut HyperionDpu,
        request: ControlRequest,
        now: Ns,
    ) -> Result<ControlResponse, ControlError> {
        dpu.require_ready().map_err(ControlError::Dpu)?;
        match request {
            ControlRequest::Deploy {
                name,
                source,
                ctx_min_len,
            } => {
                let program = assemble(name, &source, ctx_min_len).map_err(ControlError::Asm)?;
                let verified = verify(&program).map_err(ControlError::Verify)?;
                let pipeline =
                    compile(&verified, dpu.fabric.kernel_clock()).map_err(ControlError::Compile)?;
                let bitstream = to_bitstream(&pipeline, self.auth_key);
                let (slot, live_at) = dpu
                    .fabric
                    .slots
                    .program_anywhere(bitstream, now)
                    .map_err(ControlError::Slot)?;
                self.kernels.insert(
                    slot.0,
                    DeployedKernel {
                        pipeline,
                        vm: Vm::new(),
                    },
                );
                Ok(ControlResponse::Deployed { slot, live_at })
            }
            ControlRequest::Evict(slot) => {
                dpu.fabric.slots.evict(slot).map_err(ControlError::Slot)?;
                self.kernels.remove(&slot.0);
                Ok(ControlResponse::Evicted)
            }
            ControlRequest::Status => {
                let total = dpu.fabric.slots.num_slots();
                let used = (0..total)
                    .filter(|&i| dpu.fabric.slots.resident(SlotId(i)).is_some())
                    .count();
                Ok(ControlResponse::Status {
                    slots_used: used,
                    slots_total: total,
                    reconfigs: dpu.fabric.slots.reconfig_count(),
                })
            }
        }
    }

    /// Access a deployed kernel for packet execution.
    pub fn kernel_mut(&mut self, slot: SlotId) -> Option<&mut DeployedKernel> {
        self.kernels.get_mut(&slot.0)
    }

    /// Number of deployed kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xC0FFEE;

    fn booted() -> HyperionDpu {
        let mut dpu = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        dpu.boot(Ns::ZERO).unwrap();
        dpu
    }

    const FILTER: &str = r"
        ; drop (return 0) packets shorter than 20 bytes, else return the
        ; first payload byte
        jlt r2, 20, drop
        ldxb r0, [r1+0]
        exit
    drop:
        mov r0, 0
        exit
    ";

    #[test]
    fn deploy_runs_the_full_toolchain() {
        let mut dpu = booted();
        let mut cp = ControlPlane::new(KEY);
        let t0 = dpu.booted_at();
        let resp = cp
            .handle(
                &mut dpu,
                ControlRequest::Deploy {
                    name: "filter".into(),
                    source: FILTER.into(),
                    ctx_min_len: 20,
                },
                t0,
            )
            .unwrap();
        let ControlResponse::Deployed { slot, live_at } = resp else {
            panic!("expected Deployed");
        };
        assert_eq!(slot, SlotId(0));
        // Partial reconfiguration is in the paper's 10-100 ms band.
        let reconfig = live_at - t0;
        assert!(
            reconfig >= Ns::from_millis(8) && reconfig <= Ns::from_millis(100),
            "reconfig {reconfig}"
        );
        assert_eq!(cp.num_kernels(), 1);
        // The deployed kernel executes packets.
        let k = cp.kernel_mut(slot).unwrap();
        let mut packet = vec![7u8; 64];
        let (result, _) = k.pipeline.process(&mut k.vm, &mut packet, live_at).unwrap();
        assert_eq!(result.ret, 7);
    }

    #[test]
    fn unverifiable_programs_never_reach_the_fabric() {
        let mut dpu = booted();
        let mut cp = ControlPlane::new(KEY);
        let r = cp.handle(
            &mut dpu,
            ControlRequest::Deploy {
                name: "bad".into(),
                source: "ldxw r0, [r1+100]\nexit".into(), // beyond ctx window
                ctx_min_len: 16,
            },
            Ns::ZERO,
        );
        assert!(matches!(r, Err(ControlError::Verify(_))));
        assert_eq!(dpu.fabric.slots.reconfig_count(), 0);
    }

    #[test]
    fn wrong_key_bitstreams_rejected() {
        let mut dpu = booted();
        // Control plane signing with the wrong key: slot manager refuses.
        let mut cp = ControlPlane::new(0xBAD);
        let r = cp.handle(
            &mut dpu,
            ControlRequest::Deploy {
                name: "f".into(),
                source: "mov r0, 0\nexit".into(),
                ctx_min_len: 0,
            },
            Ns::ZERO,
        );
        assert!(matches!(
            r,
            Err(ControlError::Slot(SlotError::Unauthorized))
        ));
    }

    #[test]
    fn evict_frees_the_slot_and_kernel() {
        let mut dpu = booted();
        let mut cp = ControlPlane::new(KEY);
        cp.handle(
            &mut dpu,
            ControlRequest::Deploy {
                name: "f".into(),
                source: "mov r0, 0\nexit".into(),
                ctx_min_len: 0,
            },
            Ns::ZERO,
        )
        .unwrap();
        cp.handle(&mut dpu, ControlRequest::Evict(SlotId(0)), Ns::ZERO)
            .unwrap();
        assert_eq!(cp.num_kernels(), 0);
        let ControlResponse::Status {
            slots_used,
            reconfigs,
            ..
        } = cp
            .handle(&mut dpu, ControlRequest::Status, Ns::ZERO)
            .unwrap()
        else {
            panic!("expected Status");
        };
        assert_eq!(slots_used, 0);
        assert_eq!(reconfigs, 1);
    }

    #[test]
    fn unbooted_dpu_refuses_control_traffic() {
        let mut dpu = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        let mut cp = ControlPlane::new(KEY);
        assert!(matches!(
            cp.handle(&mut dpu, ControlRequest::Status, Ns::ZERO),
            Err(ControlError::Dpu(DpuError::NotReady))
        ));
    }
}
