//! # hyperion — the CPU-free Data Processing Unit
//!
//! The primary contribution of *CPU-free Computing: A Vision with a
//! Blueprint* (HotOS '23): a complete, self-hosting, network-attached DPU
//! that unifies networking, storage, and computing with **no CPU anywhere
//! on the path** — assembled here from the workspace's substrates.
//!
//! * [`dpu`] — the Figure-2 system: U280 fabric + FPGA-hosted PCIe root
//!   complex + 4 NVMe SSDs, standalone boot with JTAG self-test and
//!   segment-table recovery;
//! * [`control`] — the OS-shell/configuration kernel: authorized
//!   bitstreams over the control port, verify → compile → ICAP deploy of
//!   eBPF kernels into slots (§2, §2.2);
//! * [`services`] — the Willow-style RPC surface: KV, B+ tree pointer
//!   chasing (whole-traversal *and* per-node), shared log, file access,
//!   columnar scans (§2.3, §2.4);
//! * [`tenancy`] — multi-tenant slot execution and the predictability
//!   property (§2, §2.5, §4 Q4);
//! * [`platform`] — the paper's physical claims (230 W vs 1,600 W TDP,
//!   5–10x compactness) as data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod control;
pub mod dpu;
pub mod nvmeof;
pub mod platform;
pub mod services;
pub mod tenancy;

pub use admission::{Admission, AdmissionConfig, Overload};
pub use cluster::{
    crash_site, ClusterError, ClusterLog, ClusterSupervisor, DpuCluster, FailureDetector,
    DEFAULT_PHI_THRESHOLD, FAULT_NODE_CRASH,
};
pub use control::{ControlError, ControlPlane, ControlRequest, ControlResponse, DeployedKernel};
pub use dpu::{DpuBuilder, DpuError, DpuPorts, DpuState, HyperionDpu, SSD_LBAS};
pub use nvmeof::{
    CommandCapsule, FabricOpcode, FabricStatus, Initiator, NvmeOfTarget, ResponseCapsule,
};
pub use platform::{PlatformSpec, HYPERION, SERVER_1U};
pub use services::{
    ColumnarOp, FileOp, KvOp, LogOp, ServiceError, ServiceOp, ServiceRequest, ServiceResponse,
    TableRegistry, TreeOp,
};
pub use tenancy::{run_with_co_tenants, TenancyReport};
