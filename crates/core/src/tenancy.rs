//! Multi-tenant slot execution and the predictability property.
//!
//! Paper §2 (FPGA strength 3): "once an associated bitstream has been sent
//! to the FPGA, the circuit runs a certain clock frequency without any
//! outside interference, thus delivering energy efficient and predictable
//! performance"; §4 Q4 asks how multi-tenant Hyperion should be managed.
//!
//! [`run_with_co_tenants`] drives a resident tenant's pipeline with a steady
//! request stream while other tenants arrive and reconfigure into other
//! slots; because reconfiguration only occupies the ICAP (not the resident
//! slot's clock or datapath), the resident latency distribution must not
//! move — which experiment E8 verifies against a shared-CPU baseline where
//! co-tenants do perturb each other.

use hyperion_sim::stats::Histogram;
use hyperion_sim::time::Ns;

use crate::control::{ControlError, ControlPlane, ControlRequest};
use crate::dpu::HyperionDpu;

/// Outcome of a tenancy run.
#[derive(Debug, Clone)]
pub struct TenancyReport {
    /// Resident tenant per-item latency distribution.
    pub resident_latency: Histogram,
    /// Number of co-tenant reconfigurations that happened mid-run.
    pub reconfigurations: u64,
    /// End of the run.
    pub end: Ns,
}

/// Drives `items` requests through the resident kernel in slot 0 at the
/// given inter-arrival period, while deploying `co_tenants` other kernels
/// into free slots mid-run.
pub fn run_with_co_tenants(
    dpu: &mut HyperionDpu,
    cp: &mut ControlPlane,
    items: u64,
    period: Ns,
    co_tenants: usize,
    start: Ns,
) -> Result<TenancyReport, ControlError> {
    // Deploy the resident tenant first.
    let resp = cp.handle(
        dpu,
        ControlRequest::Deploy {
            name: "resident".into(),
            source: "ldxw r0, [r1+0]\nexit".into(),
            ctx_min_len: 64,
        },
        start,
    )?;
    let crate::control::ControlResponse::Deployed { slot, live_at } = resp else {
        unreachable!("deploy returns Deployed");
    };

    let mut latency = Histogram::new();
    let mut reconfigurations = 0u64;
    let mut now = live_at;
    let co_tenant_at = items / 2; // co-tenants arrive mid-run
    for i in 0..items {
        if i == co_tenant_at {
            for c in 0..co_tenants {
                cp.handle(
                    dpu,
                    ControlRequest::Deploy {
                        name: format!("tenant-{c}"),
                        source: "mov r0, 0\nexit".into(),
                        ctx_min_len: 0,
                    },
                    now,
                )?;
                reconfigurations += 1;
            }
        }
        let kernel = cp.kernel_mut(slot).expect("resident kernel deployed");
        let mut packet = [0u8; 64];
        let (_, done) = kernel
            .pipeline
            .process(&mut kernel.vm, &mut packet, now)
            .expect("verified kernel cannot fault");
        latency.record_ns(done - now);
        now += period;
    }
    Ok(TenancyReport {
        resident_latency: latency,
        reconfigurations,
        end: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xC0FFEE;

    #[test]
    fn resident_tail_is_flat_under_co_tenant_churn() {
        let mut dpu = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        let t = dpu.boot(Ns::ZERO).unwrap();
        let mut cp = ControlPlane::new(KEY);
        let alone = run_with_co_tenants(&mut dpu, &mut cp, 2_000, Ns(1_000), 0, t).unwrap();

        let mut dpu2 = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        let t2 = dpu2.boot(Ns::ZERO).unwrap();
        let mut cp2 = ControlPlane::new(KEY);
        let crowded = run_with_co_tenants(&mut dpu2, &mut cp2, 2_000, Ns(1_000), 3, t2).unwrap();

        assert_eq!(crowded.reconfigurations, 3);
        // The paper's predictability claim: identical latency distribution
        // with and without co-tenant reconfiguration churn.
        assert_eq!(
            alone.resident_latency.percentile(99.9),
            crowded.resident_latency.percentile(99.9),
            "resident p99.9 must not move"
        );
        assert_eq!(alone.resident_latency.max(), crowded.resident_latency.max());
    }
}
