//! Multi-tenant slot execution and the predictability property.
//!
//! Paper §2 (FPGA strength 3): "once an associated bitstream has been sent
//! to the FPGA, the circuit runs a certain clock frequency without any
//! outside interference, thus delivering energy efficient and predictable
//! performance"; §4 Q4 asks how multi-tenant Hyperion should be managed.
//!
//! [`run_with_co_tenants`] drives a resident tenant's pipeline with a steady
//! request stream while other tenants arrive and reconfigure into other
//! slots; because reconfiguration only occupies the ICAP (not the resident
//! slot's clock or datapath), the resident latency distribution must not
//! move — which experiment E8 verifies against a shared-CPU baseline where
//! co-tenants do perturb each other.

use hyperion_sim::stats::Histogram;
use hyperion_sim::time::Ns;
use hyperion_telemetry::Recorder;

use crate::control::{ControlError, ControlPlane, ControlRequest};
use crate::dpu::HyperionDpu;
use crate::services::{KvOp, LogOp, ServiceError, ServiceOp, ServiceResponse, TreeOp};
use bytes::Bytes;

/// Outcome of a tenancy run.
#[derive(Debug, Clone)]
pub struct TenancyReport {
    /// Resident tenant per-item latency distribution.
    pub resident_latency: Histogram,
    /// Number of co-tenant reconfigurations that happened mid-run.
    pub reconfigurations: u64,
    /// End of the run.
    pub end: Ns,
}

/// Drives `items` requests through the resident kernel in slot 0 at the
/// given inter-arrival period, while deploying `co_tenants` other kernels
/// into free slots mid-run.
pub fn run_with_co_tenants(
    dpu: &mut HyperionDpu,
    cp: &mut ControlPlane,
    items: u64,
    period: Ns,
    co_tenants: usize,
    start: Ns,
) -> Result<TenancyReport, ControlError> {
    // Deploy the resident tenant first.
    let resp = cp.handle(
        dpu,
        ControlRequest::Deploy {
            name: "resident".into(),
            source: "ldxw r0, [r1+0]\nexit".into(),
            ctx_min_len: 64,
        },
        start,
    )?;
    let crate::control::ControlResponse::Deployed { slot, live_at } = resp else {
        unreachable!("deploy returns Deployed");
    };

    let mut latency = Histogram::new();
    let mut reconfigurations = 0u64;
    let mut now = live_at;
    let co_tenant_at = items / 2; // co-tenants arrive mid-run
    for i in 0..items {
        if i == co_tenant_at {
            for c in 0..co_tenants {
                cp.handle(
                    dpu,
                    ControlRequest::Deploy {
                        name: format!("tenant-{c}"),
                        source: "mov r0, 0\nexit".into(),
                        ctx_min_len: 0,
                    },
                    now,
                )?;
                reconfigurations += 1;
            }
        }
        let kernel = cp.kernel_mut(slot).expect("resident kernel deployed");
        let mut packet = [0u8; 64];
        let (_, done) = kernel
            .pipeline
            .process(&mut kernel.vm, &mut packet, now)
            .expect("verified kernel cannot fault");
        latency.record_ns(done - now);
        now += period;
    }
    Ok(TenancyReport {
        resident_latency: latency,
        reconfigurations,
        end: now,
    })
}

/// One tenant's latency digest for one [`ServiceOp`] group — the row a
/// fleet operator's SLO dashboard would show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloDigest {
    /// Tenant index.
    pub tenant: u32,
    /// Op-group label ([`ServiceOp::group`]): `kv`, `tree`, `log`, ….
    pub group: &'static str,
    /// Operations observed.
    pub count: u64,
    /// Median latency (ns).
    pub p50: u64,
    /// 99th-percentile latency (ns).
    pub p99: u64,
    /// 99.9th-percentile latency (ns).
    pub p999: u64,
    /// Worst observed latency (ns).
    pub max: u64,
}

/// Per-tenant, per-op-group latency accounting (paper §4 Q4: operating a
/// multi-tenant Hyperion like a server means per-tenant SLOs, not one
/// device-wide histogram).
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    cells: Vec<(u32, &'static str, Histogram)>,
}

impl SloTracker {
    /// Creates an empty tracker.
    pub fn new() -> SloTracker {
        SloTracker::default()
    }

    /// Records one operation's end-to-end latency for `(tenant, group)`.
    pub fn observe(&mut self, tenant: u32, group: &'static str, latency: Ns) {
        if let Some(c) = self
            .cells
            .iter_mut()
            .find(|(t, g, _)| *t == tenant && *g == group)
        {
            c.2.record_ns(latency);
            return;
        }
        let mut h = Histogram::new();
        h.record_ns(latency);
        self.cells.push((tenant, group, h));
    }

    /// The underlying histogram for one `(tenant, group)` cell.
    pub fn histogram(&self, tenant: u32, group: &'static str) -> Option<&Histogram> {
        self.cells
            .iter()
            .find(|(t, g, _)| *t == tenant && *g == group)
            .map(|(_, _, h)| h)
    }

    /// Digest rows, sorted by `(tenant, group)` — deterministic output
    /// for reports and dumps.
    pub fn digest(&self) -> Vec<SloDigest> {
        let mut rows: Vec<SloDigest> = self
            .cells
            .iter()
            .map(|(tenant, group, h)| SloDigest {
                tenant: *tenant,
                group,
                count: h.count(),
                p50: h.percentile(50.0),
                p99: h.percentile(99.0),
                p999: h.percentile(99.9),
                max: h.max(),
            })
            .collect();
        rows.sort_by_key(|r| (r.tenant, r.group));
        rows
    }
}

/// Bytes appended per log entry in the tenant mix.
const MIX_LOG_ENTRY: usize = 64;

/// Drives a deterministic multi-tenant service mix through one DPU and
/// returns the per-tenant SLO digests plus the completion instant.
///
/// Tenants round-robin on the shared device (so they contend for the same
/// LSM, tree, and log — the interference an operator's SLO dashboard
/// exists to catch), and each tenant has a personality by index: KV-heavy
/// (`t % 3 == 0`), tree-heavy (`t % 3 == 1`), log-heavy (`t % 3 == 2`).
/// Every op runs through the traced dispatch path, so `rec` accumulates
/// the same spans/hops a production flight recorder would.
pub fn run_tenant_mix(
    dpu: &mut HyperionDpu,
    tenants: u32,
    requests_per_tenant: u64,
    start: Ns,
    rec: &mut Recorder,
) -> Result<(SloTracker, Ns), ServiceError> {
    assert!(tenants > 0, "need at least one tenant");
    let mut slo = SloTracker::new();
    let mut log_tail: Vec<Option<u64>> = vec![None; tenants as usize];
    let mut now = start;
    for i in 0..requests_per_tenant {
        for t in 0..tenants {
            let k = i * tenants as u64 + t as u64;
            let op: ServiceOp = match t % 3 {
                0 => {
                    // KV on the KV-SSD namespace: every op pays real
                    // device time (memtable hits would be free).
                    if i % 2 == 0 {
                        KvOp::SsdPut {
                            key: k.to_le_bytes().to_vec(),
                            value: Bytes::from(vec![t as u8; 128]),
                        }
                        .into()
                    } else {
                        // Read back this tenant's previous put.
                        KvOp::SsdGet {
                            key: (k - tenants as u64).to_le_bytes().to_vec(),
                        }
                        .into()
                    }
                }
                1 => {
                    if i % 2 == 0 {
                        TreeOp::Insert {
                            key: k,
                            value: k * 7,
                        }
                        .into()
                    } else {
                        TreeOp::Lookup {
                            key: k - tenants as u64,
                        }
                        .into()
                    }
                }
                _ => match (i % 2, log_tail[t as usize]) {
                    (1, Some(position)) => LogOp::Read { position }.into(),
                    _ => LogOp::Append {
                        data: Bytes::from(vec![t as u8; MIX_LOG_ENTRY]),
                    }
                    .into(),
                },
            };
            let group = op.group();
            let (resp, done) = dpu.dispatch_traced(now, op, rec)?;
            if let ServiceResponse::Appended { position } = resp {
                log_tail[t as usize] = Some(position);
            }
            slo.observe(t, group, done.saturating_sub(now));
            now = done;
        }
    }
    Ok((slo, now))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xC0FFEE;

    #[test]
    fn resident_tail_is_flat_under_co_tenant_churn() {
        let mut dpu = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        let t = dpu.boot(Ns::ZERO).unwrap();
        let mut cp = ControlPlane::new(KEY);
        let alone = run_with_co_tenants(&mut dpu, &mut cp, 2_000, Ns(1_000), 0, t).unwrap();

        let mut dpu2 = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
        let t2 = dpu2.boot(Ns::ZERO).unwrap();
        let mut cp2 = ControlPlane::new(KEY);
        let crowded = run_with_co_tenants(&mut dpu2, &mut cp2, 2_000, Ns(1_000), 3, t2).unwrap();

        assert_eq!(crowded.reconfigurations, 3);
        // The paper's predictability claim: identical latency distribution
        // with and without co-tenant reconfiguration churn.
        assert_eq!(
            alone.resident_latency.percentile(99.9),
            crowded.resident_latency.percentile(99.9),
            "resident p99.9 must not move"
        );
        assert_eq!(alone.resident_latency.max(), crowded.resident_latency.max());
    }

    #[test]
    fn slo_tracker_digests_sorted_per_tenant_group() {
        let mut s = SloTracker::new();
        s.observe(1, "tree", Ns(500));
        s.observe(0, "kv", Ns(100));
        s.observe(0, "kv", Ns(300));
        s.observe(0, "log", Ns(200));
        let d = s.digest();
        let keys: Vec<(u32, &str)> = d.iter().map(|r| (r.tenant, r.group)).collect();
        assert_eq!(keys, vec![(0, "kv"), (0, "log"), (1, "tree")]);
        assert_eq!(d[0].count, 2);
        assert!(d[0].p50 <= d[0].p99 && d[0].p99 <= d[0].p999);
        assert_eq!(d[0].max, 300);
    }

    #[test]
    fn tenant_mix_is_deterministic_and_covers_all_groups() {
        let run = || {
            let mut dpu = crate::dpu::DpuBuilder::new().auth_key(KEY).build();
            let t = dpu.boot(Ns::ZERO).unwrap();
            let mut rec = Recorder::new("slo");
            let (slo, end) = run_tenant_mix(&mut dpu, 3, 40, t, &mut rec).unwrap();
            assert_eq!(rec.open_spans(), 0);
            (slo.digest(), end)
        };
        let (a, end_a) = run();
        let (b, end_b) = run();
        assert_eq!(a, b, "same seed, same digests");
        assert_eq!(end_a, end_b);
        let groups: Vec<(u32, &str)> = a.iter().map(|r| (r.tenant, r.group)).collect();
        assert_eq!(groups, vec![(0, "kv"), (1, "tree"), (2, "log")]);
        for row in &a {
            assert_eq!(row.count, 40, "{}: every request observed", row.group);
            // Memtable hits can be free (0 ns); the percentiles must
            // still be ordered and bounded by the observed max.
            assert!(row.p50 <= row.p99 && row.p99 <= row.p999 && row.p999 <= row.max);
        }
        // Storage-backed groups pay real latency.
        assert!(a.iter().any(|r| r.p999 > 0));
    }
}
