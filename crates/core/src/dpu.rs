//! The assembled Hyperion DPU.
//!
//! One [`HyperionDpu`] is the complete Figure-2 system: the U280 fabric
//! with its AXIS switch and reconfigurable slots, the FPGA-hosted PCIe
//! root complex with the x16→4x4 bifurcation, and four NVMe SSDs — plus
//! the software state the blueprint describes: the single-level segment
//! store (SSD0–1), the Corfu log units (SSD2, striped), and the
//! block-structure volume hosting the B+ tree / LSM / file system /
//! columnar objects (SSD3).
//!
//! Boot (paper §2): power on → JTAG self-tests → standalone, no host. The
//! segment translation table is recovered from SSD0's boot area.

use hyperion_fabric::{Fabric, PortId};
use hyperion_mem::seglevel::SingleLevelStore;
use hyperion_nvme::device::NvmeDevice;
use hyperion_pcie::{Bifurcation, RootComplex};
use hyperion_sim::stats::Counters;
use hyperion_sim::time::Ns;
use hyperion_storage::blockstore::BlockStore;
use hyperion_storage::btree::BTree;
use hyperion_storage::corfu::CorfuLog;
use hyperion_storage::fs::FileSystem;
use hyperion_storage::lsm::LsmTree;

use crate::platform;

/// DPU life-cycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpuState {
    /// Power applied, self-tests running.
    PoweredOff,
    /// Standalone and serving (no host attached).
    Ready,
}

/// Errors from DPU assembly and boot.
#[derive(Debug)]
#[non_exhaustive]
pub enum DpuError {
    /// Single-level store failure during recovery.
    Store(hyperion_mem::seglevel::StoreError),
    /// Structure volume failure during formatting.
    Storage(String),
    /// Operation requires a booted DPU.
    NotReady,
}

impl std::fmt::Display for DpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpuError::Store(e) => write!(f, "segment store: {e}"),
            DpuError::Storage(e) => write!(f, "structure volume: {e}"),
            DpuError::NotReady => write!(f, "DPU has not booted"),
        }
    }
}

impl std::error::Error for DpuError {}

impl From<hyperion_mem::seglevel::StoreError> for DpuError {
    fn from(e: hyperion_mem::seglevel::StoreError) -> DpuError {
        DpuError::Store(e)
    }
}

/// Capacity (LBAs) of each of the four prototype SSDs in simulation runs
/// (kept modest; the store is sparse).
pub const SSD_LBAS: u64 = 1 << 24; // 64 GiB per device

/// The complete CPU-free DPU.
#[derive(Debug)]
pub struct HyperionDpu {
    state: DpuState,
    /// The FPGA: slots, memory tiers, AXIS switch, energy.
    pub fabric: Fabric,
    /// FPGA-hosted root complex (paper §2: "Hyperion runs a PCIe root
    /// complex with an NVMe controller on the FPGA board").
    pub root_complex: RootComplex,
    /// The x16 → 4x4 bifurcation to the SSDs.
    pub bifurcation: Bifurcation,
    /// Single-level segment store over SSD0–1.
    pub segments: SingleLevelStore,
    /// Corfu shared log (SSD2, striped into 4 units).
    pub log: CorfuLog,
    /// Structure volume (SSD3): B+ tree, LSM, FS, columnar files.
    pub blocks: BlockStore,
    /// A KV-SSD namespace (Figure 2's "KV-SSD" export): the device-native
    /// alternative to the LSM-over-blocks KV service.
    pub kvssd: NvmeDevice,
    /// The exported B+ tree (pointer-chasing service).
    pub btree: Option<BTree>,
    /// The exported KV store.
    pub lsm: LsmTree,
    /// The exported file system.
    pub fs: Option<FileSystem>,
    /// AXIS ports of the Figure-2 schematic.
    pub ports: DpuPorts,
    /// Structural counters (`boots`, `served`, `shed`).
    pub counters: Counters,
    /// Admission control (overload shedding); `None` — the default —
    /// admits everything, leaving the fault-free baseline untouched.
    pub admission: Option<crate::admission::Admission>,
    /// Columnar tables published on this DPU (what the typed dispatch
    /// path resolves against).
    pub(crate) tables: crate::services::TableRegistry,
    booted_at: Ns,
}

/// Named AXIS endpoints from Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct DpuPorts {
    /// QSFP0 100 GbE port.
    pub qsfp0: PortId,
    /// QSFP1 100 GbE port.
    pub qsfp1: PortId,
    /// The accelerator-row ingress (runtime config engine side).
    pub accel: PortId,
    /// The NVMe host IP core.
    pub nvme: PortId,
}

/// Builder for a [`HyperionDpu`].
///
/// Defaults match the prototype blueprint: two segment-store SSDs, five
/// reconfigurable slots, auth key 0. The builder exposes the assembly
/// choices the paper treats as deployment parameters; the deprecated
/// `assemble(auth_key)` one-knob shim remains only for out-of-tree
/// callers and is hidden from docs.
#[derive(Debug, Clone, Copy)]
pub struct DpuBuilder {
    segment_ssds: usize,
    slots: usize,
    auth_key: u64,
    admission: Option<crate::admission::AdmissionConfig>,
}

impl Default for DpuBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DpuBuilder {
    /// A builder with the prototype defaults (2 segment SSDs, 5 slots,
    /// auth key 0).
    pub fn new() -> DpuBuilder {
        DpuBuilder {
            segment_ssds: 2,
            slots: 5,
            auth_key: 0,
            admission: None,
        }
    }

    /// Number of SSDs backing the single-level segment store.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn segment_ssds(mut self, n: usize) -> DpuBuilder {
        assert!(n > 0, "the segment store needs at least one SSD");
        self.segment_ssds = n;
        self
    }

    /// Number of reconfigurable fabric slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn slots(mut self, n: usize) -> DpuBuilder {
        assert!(n > 0, "the fabric needs at least one slot");
        self.slots = n;
        self
    }

    /// Bitstream authorization key.
    pub fn auth_key(mut self, key: u64) -> DpuBuilder {
        self.auth_key = key;
        self
    }

    /// Enables admission control (overload shedding) with `cfg`. Off by
    /// default: an unconfigured DPU admits every request, so existing
    /// baselines are untouched.
    pub fn admission(mut self, cfg: crate::admission::AdmissionConfig) -> DpuBuilder {
        self.admission = Some(cfg);
        self
    }

    /// Assembles an unbooted DPU with fresh SSDs.
    pub fn build(self) -> HyperionDpu {
        let mut fabric = Fabric::u280(self.slots, self.auth_key);
        let qsfp0 = fabric.switch.add_port("qsfp0").expect("fresh switch");
        let qsfp1 = fabric.switch.add_port("qsfp1").expect("fresh switch");
        let accel = fabric.switch.add_port("accel-row").expect("fresh switch");
        let nvme = fabric
            .switch
            .add_port("nvme-host-ip")
            .expect("fresh switch");
        let devices = (0..self.segment_ssds)
            .map(|_| NvmeDevice::new_block(SSD_LBAS))
            .collect();
        HyperionDpu {
            state: DpuState::PoweredOff,
            fabric,
            root_complex: RootComplex::new(),
            bifurcation: Bifurcation::x16_to_4x4(),
            segments: SingleLevelStore::new(devices),
            log: CorfuLog::new(4, SSD_LBAS / 4),
            blocks: BlockStore::with_capacity(SSD_LBAS),
            kvssd: NvmeDevice::new_kv(SSD_LBAS),
            btree: None,
            lsm: LsmTree::new(),
            fs: None,
            ports: DpuPorts {
                qsfp0,
                qsfp1,
                accel,
                nvme,
            },
            counters: Counters::new(),
            admission: self.admission.map(crate::admission::Admission::new),
            tables: crate::services::TableRegistry::default(),
            booted_at: Ns::ZERO,
        }
    }
}

impl HyperionDpu {
    /// Assembles an unbooted DPU with fresh SSDs.
    #[doc(hidden)]
    #[deprecated(since = "0.1.0", note = "use `DpuBuilder` instead")]
    pub fn assemble(auth_key: u64) -> HyperionDpu {
        DpuBuilder::new().auth_key(auth_key).build()
    }

    /// Boots standalone: JTAG self-tests, then segment-table recovery from
    /// the boot area, then structure-volume formatting (first boot) —
    /// no host CPU anywhere on the path. Returns the ready instant.
    pub fn boot(&mut self, now: Ns) -> Result<Ns, DpuError> {
        let t = now + hyperion_fabric::params::SELF_TEST_DURATION;
        // Recover the single-level store from the persisted table: move
        // the devices out and back through recovery.
        let devices = std::mem::replace(
            &mut self.segments,
            SingleLevelStore::new(vec![NvmeDevice::new_block(1)]),
        );
        let (recovered, t) = devices.crash_and_recover(t)?;
        self.segments = recovered;
        // First boot: create the exported structures.
        let mut t = t;
        if self.btree.is_none() {
            let (tree, t2) =
                BTree::create(&mut self.blocks, t).map_err(|e| DpuError::Storage(e.to_string()))?;
            self.btree = Some(tree);
            t = t2;
        }
        if self.fs.is_none() {
            let (fs, t2) = FileSystem::format(&mut self.blocks, t)
                .map_err(|e| DpuError::Storage(e.to_string()))?;
            self.fs = Some(fs);
            t = t2;
        }
        self.state = DpuState::Ready;
        self.booted_at = t;
        self.counters.bump("boots");
        Ok(t)
    }

    /// Current state.
    pub fn state(&self) -> DpuState {
        self.state
    }

    /// Instant the DPU became ready.
    pub fn booted_at(&self) -> Ns {
        self.booted_at
    }

    /// Errors unless booted.
    pub fn require_ready(&self) -> Result<(), DpuError> {
        if self.state == DpuState::Ready {
            Ok(())
        } else {
            Err(DpuError::NotReady)
        }
    }

    /// Total energy drawn since boot if the DPU ran for `dt`, using the
    /// whole-assembly TDP envelope (conservative: the paper's own
    /// comparison is max-TDP based).
    pub fn energy_envelope(&self, dt: Ns) -> hyperion_sim::energy::Pj {
        platform::HYPERION.max_tdp.energy_over(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_mem::seglevel::{AllocHint, SegmentId};

    #[test]
    fn assemble_and_boot_standalone() {
        let mut dpu = DpuBuilder::new().auth_key(0xC0FFEE).build();
        assert_eq!(dpu.state(), DpuState::PoweredOff);
        assert!(dpu.require_ready().is_err());
        let ready = dpu.boot(Ns::ZERO).unwrap();
        assert_eq!(dpu.state(), DpuState::Ready);
        // Self-test dominates first boot: 250 ms + recovery + formatting.
        assert!(ready >= Ns::from_millis(250));
        assert!(ready < Ns::from_millis(400), "boot took {ready}");
        dpu.require_ready().unwrap();
    }

    #[test]
    fn figure2_ports_exist() {
        let dpu = DpuBuilder::new().auth_key(1).build();
        assert_ne!(dpu.ports.qsfp0, dpu.ports.qsfp1);
        assert_eq!(dpu.fabric.switch.port("nvme-host-ip"), Some(dpu.ports.nvme));
    }

    #[test]
    fn segments_survive_reboot() {
        let mut dpu = DpuBuilder::new().auth_key(1).build();
        let t = dpu.boot(Ns::ZERO).unwrap();
        dpu.segments
            .create(SegmentId(42), 4096, AllocHint::Durable, t)
            .unwrap();
        dpu.segments
            .write(SegmentId(42), 0, b"boot-proof", t)
            .unwrap();
        let t = dpu.segments.persist_table(t).unwrap();
        // Reboot the same DPU.
        let t = dpu.boot(t).unwrap();
        let (data, _) = dpu.segments.read(SegmentId(42), 0, 10, t).unwrap();
        assert_eq!(data.as_ref(), b"boot-proof");
    }

    #[test]
    fn end_to_end_path_has_no_cpu_hops() {
        // The Figure-2 smoke path: network port -> accel row -> NVMe IP,
        // then a P2P DMA across the FPGA root complex. No cpu_hops.
        let mut dpu = DpuBuilder::new().auth_key(1).build();
        dpu.boot(Ns::ZERO).unwrap();
        let t = dpu
            .fabric
            .switch
            .stream(dpu.ports.qsfp0, dpu.ports.accel, Ns::ZERO, 4096)
            .unwrap();
        let t = dpu
            .fabric
            .switch
            .stream(dpu.ports.accel, dpu.ports.nvme, t, 4096)
            .unwrap();
        assert!(t > Ns::ZERO);
        assert_eq!(dpu.root_complex.counters.get("cpu_hops"), 0);
    }
}
