//! Availability-layer acceptance tests: admission control under
//! generated overload, and the epoch fence against zombie writers.
//!
//! The property half drives one DPU past its admission watermark with
//! generated burst sizes and watermark configs and checks the two
//! sides of the shedding contract:
//!
//! * **accepted requests meet a bounded budget** — the high watermark
//!   caps the queue an admitted request can sit behind, so its latency
//!   is bounded by the watermark (not by the offered burst), and a
//!   shed-then-retried request is served within `ceil(shed/high)` retry
//!   rounds;
//! * **rejected requests fail fast** — a shed request costs the device
//!   nothing: the typed `Overloaded` carries the depth/limit that
//!   refused it and no virtual time is charged.

use bytes::Bytes;
use hyperion::{
    crash_site, AdmissionConfig, ClusterError, ClusterSupervisor, DpuBuilder, DpuCluster,
    HyperionDpu, KvOp, ServiceError, ServiceRequest, DEFAULT_PHI_THRESHOLD,
};
use hyperion_net::NodeId;
use hyperion_sim::fault::FaultPlan;
use hyperion_sim::time::Ns;
use hyperion_storage::corfu::{CorfuError, CorfuLog};
use proptest::prelude::*;

fn booted(admission: Option<AdmissionConfig>) -> HyperionDpu {
    let mut b = DpuBuilder::new().auth_key(1);
    if let Some(cfg) = admission {
        b = b.admission(cfg);
    }
    let mut dpu = b.build();
    dpu.boot(Ns::ZERO).expect("boot");
    dpu
}

fn ssd_put(i: u64) -> KvOp {
    KvOp::SsdPut {
        key: i.to_le_bytes().to_vec(),
        value: Bytes::from_static(&[3u8; 32]),
    }
}

/// One flash-backed op on an idle DPU: the unit of the latency budget.
fn idle_op_latency() -> Ns {
    let mut dpu = booted(None);
    let t = dpu.booted_at();
    let (_, done) = dpu.dispatch(t, ssd_put(u64::MAX)).expect("idle op");
    done.saturating_sub(t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn overload_bursts_shed_past_the_watermark_and_stay_bounded(
        high in 2usize..12,
        extra in 1usize..8,
        burst in 16u64..48,
    ) {
        let cfg = AdmissionConfig {
            max_inflight: high + extra,
            high_watermark: high,
            low_watermark: (high / 2).max(1),
        };
        let t_op = idle_op_latency();
        let mut dpu = booted(Some(cfg));
        let t = dpu.booted_at() + Ns::from_millis(1);

        // The whole burst arrives at one instant: flash-backed work
        // overlaps, so the admission depth is real queue depth.
        let mut accepted = 0u64;
        let mut worst = Ns::ZERO;
        let mut shed: Vec<u64> = Vec::new();
        for i in 0..burst {
            match dpu.dispatch(t, ssd_put(i)) {
                Ok((_, done)) => {
                    accepted += 1;
                    worst = worst.max(done.saturating_sub(t));
                }
                Err(ServiceError::Overloaded { depth, limit }) => {
                    // Fail fast, and honestly: the refusal names the
                    // threshold it hit and the depth that hit it.
                    prop_assert!(depth >= limit, "depth {depth} under limit {limit}");
                    prop_assert!(
                        limit == cfg.high_watermark
                            || limit == cfg.low_watermark
                            || limit == cfg.max_inflight
                    );
                    shed.push(i);
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
        // The watermark admits exactly its depth and sheds the rest.
        prop_assert_eq!(accepted, high as u64);
        prop_assert_eq!(accepted + shed.len() as u64, burst);
        prop_assert_eq!(dpu.counters.get("shed"), shed.len() as u64);

        // Accepted requests meet the budget: latency bounded by the
        // watermark, never by the offered burst.
        let budget = t_op * (high as u64 + 2);
        prop_assert!(worst <= budget, "worst {worst} over budget {budget}");

        // Control: the same burst with admission off queues the whole
        // burst, and its tail blows past what shedding allowed.
        let mut open = booted(None);
        let t2 = open.booted_at() + Ns::from_millis(1);
        let mut open_worst = Ns::ZERO;
        for i in 0..burst {
            let (_, done) = open.dispatch(t2, ssd_put(i)).expect("no admission");
            open_worst = open_worst.max(done.saturating_sub(t2));
        }
        prop_assert!(
            open_worst > worst,
            "unshed tail {open_worst} must exceed shed tail {worst}"
        );

        // Bounded-retry budget: retrying the shed requests at drained
        // round boundaries serves all of them within ceil(shed/high)
        // rounds — each round the backlog is gone and the watermark
        // admits another `high`.
        let interval = Ns::from_millis(5);
        let mut now = t;
        let mut rounds = 0u64;
        while !shed.is_empty() {
            now += interval;
            rounds += 1;
            let mut still = Vec::new();
            for &i in &shed {
                match dpu.dispatch(now, ssd_put(i)) {
                    Ok(_) => {}
                    Err(ServiceError::Overloaded { .. }) => still.push(i),
                    Err(e) => return Err(TestCaseError::fail(format!("retry: {e}"))),
                }
            }
            shed = still;
            prop_assert!(
                rounds <= burst.div_ceil(high as u64) + 1,
                "retry budget exceeded at round {rounds}"
            );
        }
    }
}

/// End-to-end zombie fencing: a member crashes, the detector latches,
/// failover seals the survivors into a new epoch — and then the dead
/// member "comes back" and tries to keep writing. Both its RPC (stale
/// epoch) and its direct log write (sealed unit) must bounce with typed
/// errors; nothing it says after the seal can land.
#[test]
fn zombie_writes_after_failover_are_fenced_everywhere() {
    let (mut cluster, ready) = DpuCluster::boot(3, 1, Ns::ZERO);
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let interval = Ns(1_000_000);
    let mut sup = ClusterSupervisor::new(nodes, interval, DEFAULT_PHI_THRESHOLD);
    let mut log = CorfuLog::new_replicated(3, 1 << 12, 2);
    log.add_spare_unit(1 << 12);

    // Pre-failure appends so the failover has replicas to repair.
    let mut t = ready;
    for i in 0..9u64 {
        let (_, done) = log.append(&i.to_le_bytes(), t).expect("append");
        t = done;
    }
    let old_epoch = log.epoch();

    // Member 0 fail-stops one tick after its first heartbeat.
    let faults = FaultPlan::seeded(7).from_instant(&crash_site(0), t + Ns(1));
    let mut failed_over = false;
    for round in 0..12u64 {
        let now = t + Ns(round * interval.0);
        for m in sup.tick(&faults, now, None) {
            assert_eq!(m, 0);
            let report = sup.fail_over(&mut log, m, now, None).expect("failover");
            assert!(report.repaired_positions > 0, "replicas must be repaired");
            failed_over = true;
        }
    }
    assert!(failed_over, "the crash must be detected within 12 rounds");
    assert!(sup.is_suspected(0));
    assert_eq!(sup.epoch(), old_epoch + 1);

    // Fence 1 — the RPC layer: the zombie's requests carry the sealed
    // epoch and are refused before touching any state.
    let r = cluster.serve_fenced(
        &sup,
        old_epoch,
        42,
        ServiceRequest::KvPut { key: 42, value: 1 },
        t,
    );
    assert!(
        matches!(r, Err(ClusterError::StaleEpoch { need, .. }) if need == old_epoch + 1),
        "zombie RPC must be fenced: {r:?}"
    );

    // Fence 2 — the storage layer: a late write straight to a survivor's
    // log unit with the zombie's epoch bounces off the seal.
    let w = log.unit_mut(1).write(old_epoch, 1_000, b"late", t);
    assert!(
        matches!(w, Err(CorfuError::SealedEpoch { .. })),
        "zombie log write must be fenced: {w:?}"
    );

    // A refreshed client at the new epoch is served normally.
    cluster
        .serve_fenced(
            &sup,
            old_epoch + 1,
            42,
            ServiceRequest::KvPut { key: 42, value: 1 },
            t,
        )
        .expect("current-epoch client must be served");
    log.append(b"post-failover", t)
        .expect("the log must stay available after failover");
}
