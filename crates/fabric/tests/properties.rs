//! Property tests for the FPGA fabric: slot accounting, ICAP ordering,
//! and resource arithmetic.

use hyperion_fabric::bitstream::Bitstream;
use hyperion_fabric::clock::ClockDomain;
use hyperion_fabric::params;
use hyperion_fabric::resources::ResourceBudget;
use hyperion_fabric::slots::{SlotId, SlotManager};
use hyperion_sim::time::Ns;
use proptest::prelude::*;

const KEY: u64 = 0xFEED;

fn budget_strategy() -> impl Strategy<Value = ResourceBudget> {
    (
        0u64..300_000,
        0u64..600_000,
        0u64..500,
        0u64..200,
        0u64..2_000,
    )
        .prop_map(|(luts, ffs, brams, urams, dsps)| ResourceBudget {
            luts,
            ffs,
            brams,
            urams,
            dsps,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Budget arithmetic: `checked_sub` succeeds exactly when the
    /// requirement fits, and fits_in is reflexive and monotone.
    #[test]
    fn budget_arithmetic_consistent(a in budget_strategy(), b in budget_strategy()) {
        prop_assert_eq!(b.fits_in(&a), a.checked_sub(&b).is_some());
        prop_assert!(a.fits_in(&a));
        let sum = a + b;
        prop_assert!(a.fits_in(&sum));
        prop_assert!(b.fits_in(&sum));
        prop_assert_eq!(sum.checked_sub(&b), Some(a));
    }

    /// Slot placement: kernels that fit always place while slots remain,
    /// reconfigurations strictly order on the ICAP, and eviction frees
    /// slots for reuse.
    #[test]
    fn slot_lifecycle(
        kernels in proptest::collection::vec(budget_strategy(), 1..12),
        n_slots in 1usize..6,
    ) {
        let mut mgr = SlotManager::new(params::U280_BUDGET, n_slots, KEY);
        let slot_budget = mgr.slot_budget();
        let mut live_times: Vec<Ns> = Vec::new();
        let mut placed = 0usize;
        for (i, req) in kernels.iter().enumerate() {
            let bs = Bitstream::new(format!("k{i}"), *req, ClockDomain::new(250), KEY);
            match mgr.program_anywhere(bs, Ns::ZERO) {
                Ok((_, live)) => {
                    if let Some(&prev) = live_times.last() {
                        prop_assert!(live > prev, "ICAP must serialize reconfigs");
                    }
                    live_times.push(live);
                    placed += 1;
                }
                Err(e) => {
                    // The only legal failures: does not fit, or all busy.
                    let fits = req.fits_in(&slot_budget);
                    let full = placed >= n_slots;
                    prop_assert!(
                        !fits || full,
                        "unexpected placement failure {e:?} (fits={fits}, full={full})"
                    );
                }
            }
        }
        prop_assert!(placed <= n_slots);
        // Evict everything; all slots become free again.
        for i in 0..n_slots {
            let _ = mgr.evict(SlotId(i));
        }
        prop_assert_eq!(mgr.free_slot(), Some(SlotId(0)));
    }

    /// Clock conversion: cycles→ns→cycles never loses cycles (the ns
    /// value always covers at least the requested cycles).
    #[test]
    fn clock_round_trip_is_conservative(mhz in 1u64..1_000, cycles in 0u64..10_000_000) {
        let clk = ClockDomain::new(mhz);
        let ns = clk.cycles_to_ns(cycles);
        prop_assert!(clk.ns_to_cycles(ns) >= cycles);
    }

    /// Bitstream authorization: a signature only verifies under its own
    /// key.
    #[test]
    fn signatures_bind_to_keys(key_a in any::<u64>(), key_b in any::<u64>(), req in budget_strategy()) {
        let bs = Bitstream::new("k", req, ClockDomain::new(250), key_a);
        prop_assert!(bs.verify(key_a));
        if key_a != key_b {
            prop_assert!(!bs.verify(key_b));
        }
    }
}
