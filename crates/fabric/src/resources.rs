//! FPGA area accounting: LUTs, flip-flops, BRAM/URAM blocks, DSP slices.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A bundle of FPGA resource quantities.
///
/// Used both as a *budget* (what a slot offers) and a *requirement* (what a
/// bitstream consumes). All arithmetic is checked so placement logic can
/// report precise failures.
///
/// # Examples
///
/// ```
/// use hyperion_fabric::resources::ResourceBudget;
///
/// let slot = ResourceBudget { luts: 100_000, ffs: 200_000, brams: 200, urams: 96, dsps: 900 };
/// let kernel = ResourceBudget { luts: 40_000, ffs: 60_000, brams: 32, urams: 8, dsps: 120 };
/// assert!(kernel.fits_in(&slot));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// 36 Kib block RAMs.
    pub brams: u64,
    /// 288 Kib UltraRAMs.
    pub urams: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl ResourceBudget {
    /// The empty budget.
    pub const ZERO: ResourceBudget = ResourceBudget {
        luts: 0,
        ffs: 0,
        brams: 0,
        urams: 0,
        dsps: 0,
    };

    /// Returns true if `self` (a requirement) fits within `budget`.
    pub fn fits_in(&self, budget: &ResourceBudget) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.brams <= budget.brams
            && self.urams <= budget.urams
            && self.dsps <= budget.dsps
    }

    /// Subtracts a requirement, returning `None` if any dimension would go
    /// negative.
    pub fn checked_sub(&self, req: &ResourceBudget) -> Option<ResourceBudget> {
        Some(ResourceBudget {
            luts: self.luts.checked_sub(req.luts)?,
            ffs: self.ffs.checked_sub(req.ffs)?,
            brams: self.brams.checked_sub(req.brams)?,
            urams: self.urams.checked_sub(req.urams)?,
            dsps: self.dsps.checked_sub(req.dsps)?,
        })
    }

    /// Divides the budget into `n` equal shares (integer division per
    /// dimension), e.g. when carving a die into reconfigurable slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: u64) -> ResourceBudget {
        assert!(n > 0, "cannot split a budget into zero shares");
        ResourceBudget {
            luts: self.luts / n,
            ffs: self.ffs / n,
            brams: self.brams / n,
            urams: self.urams / n,
            dsps: self.dsps / n,
        }
    }

    /// The fraction of `budget` this requirement occupies, as the maximum
    /// over dimensions (the binding constraint), in `[0, +inf)`.
    pub fn occupancy_of(&self, budget: &ResourceBudget) -> f64 {
        let frac = |a: u64, b: u64| -> f64 {
            if b == 0 {
                if a == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                a as f64 / b as f64
            }
        };
        frac(self.luts, budget.luts)
            .max(frac(self.ffs, budget.ffs))
            .max(frac(self.brams, budget.brams))
            .max(frac(self.urams, budget.urams))
            .max(frac(self.dsps, budget.dsps))
    }
}

impl Add for ResourceBudget {
    type Output = ResourceBudget;
    fn add(self, rhs: ResourceBudget) -> ResourceBudget {
        ResourceBudget {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            urams: self.urams + rhs.urams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for ResourceBudget {
    fn add_assign(&mut self, rhs: ResourceBudget) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "luts={} ffs={} brams={} urams={} dsps={}",
            self.luts, self.ffs, self.brams, self.urams, self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(luts: u64, brams: u64) -> ResourceBudget {
        ResourceBudget {
            luts,
            ffs: luts * 2,
            brams,
            urams: 0,
            dsps: 0,
        }
    }

    #[test]
    fn fits_requires_every_dimension() {
        let budget = b(100, 10);
        assert!(b(100, 10).fits_in(&budget));
        assert!(!b(101, 1).fits_in(&budget));
        assert!(!b(1, 11).fits_in(&budget));
    }

    #[test]
    fn checked_sub_fails_cleanly() {
        let budget = b(100, 10);
        assert_eq!(budget.checked_sub(&b(40, 4)), Some(b(60, 6)));
        assert_eq!(budget.checked_sub(&b(200, 0)), None);
    }

    #[test]
    fn split_divides_each_dimension() {
        let s = crate::params::U280_BUDGET.split(4);
        assert_eq!(s.luts, crate::params::U280_BUDGET.luts / 4);
        assert_eq!(s.brams, crate::params::U280_BUDGET.brams / 4);
    }

    #[test]
    fn occupancy_is_binding_constraint() {
        let budget = b(100, 10);
        // 50% of LUTs but 90% of BRAM: BRAM binds.
        let req = b(50, 9);
        assert!((req.occupancy_of(&budget) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn occupancy_handles_zero_dimensions() {
        let budget = ResourceBudget {
            luts: 10,
            ..ResourceBudget::ZERO
        };
        let req = ResourceBudget {
            luts: 5,
            ..ResourceBudget::ZERO
        };
        assert!((req.occupancy_of(&budget) - 0.5).abs() < 1e-9);
        let impossible = ResourceBudget {
            dsps: 1,
            ..ResourceBudget::ZERO
        };
        assert!(impossible.occupancy_of(&budget).is_infinite());
    }
}
