//! Clock domains: converting pipeline cycles to virtual time.

use hyperion_sim::time::Ns;

/// A fixed-frequency clock domain.
///
/// The paper's predictability argument (§2, FPGA strength 3) rests on the
/// fact that a placed circuit runs at a fixed frequency without outside
/// interference; all pipeline timing in the reproduction flows through this
/// type so that claim is structural.
///
/// # Examples
///
/// ```
/// use hyperion_fabric::clock::ClockDomain;
/// use hyperion_sim::time::Ns;
///
/// let clk = ClockDomain::new(250);
/// assert_eq!(clk.cycles_to_ns(250_000_000), Ns::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    mhz: u64,
}

impl ClockDomain {
    /// Creates a clock domain at the given frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn new(mhz: u64) -> ClockDomain {
        assert!(mhz > 0, "clock frequency must be non-zero");
        ClockDomain { mhz }
    }

    /// The domain frequency in MHz.
    pub fn mhz(&self) -> u64 {
        self.mhz
    }

    /// Duration of one cycle, rounded up to whole nanoseconds for a
    /// conservative model (250 MHz -> 4 ns exactly).
    pub fn cycle(&self) -> Ns {
        Ns(1_000u64.div_ceil(self.mhz))
    }

    /// Converts a cycle count to virtual time (exact, not per-cycle
    /// rounded: `cycles * 1000 / mhz`, rounded up).
    pub fn cycles_to_ns(&self, cycles: u64) -> Ns {
        Ns(((cycles as u128 * 1_000).div_ceil(self.mhz as u128)) as u64)
    }

    /// Converts a duration to a whole number of cycles, rounding up.
    pub fn ns_to_cycles(&self, t: Ns) -> u64 {
        ((t.0 as u128 * self.mhz as u128).div_ceil(1_000)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_rounds_up() {
        assert_eq!(ClockDomain::new(250).cycle(), Ns(4));
        assert_eq!(ClockDomain::new(300).cycle(), Ns(4)); // 3.33 -> 4
        assert_eq!(ClockDomain::new(1000).cycle(), Ns(1));
    }

    #[test]
    fn cycles_to_ns_is_exact_in_aggregate() {
        let clk = ClockDomain::new(300);
        // 300 cycles at 300 MHz = exactly 1 us even though one cycle rounds.
        assert_eq!(clk.cycles_to_ns(300), Ns(1_000));
    }

    #[test]
    fn ns_to_cycles_round_trip_upper_bounds() {
        let clk = ClockDomain::new(250);
        let t = Ns(1_001);
        let c = clk.ns_to_cycles(t);
        assert!(clk.cycles_to_ns(c) >= t);
    }
}
