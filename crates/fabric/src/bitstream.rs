//! Partial bitstreams: the unit of deployment onto a reconfigurable slot.
//!
//! Paper §2.2: "Hyperion can run a privileged configuration kernel that can
//! receive authorized, encrypted FPGA bitstreams over a certain control
//! network port and assign slices to it." The authorization tag here is a
//! keyed checksum standing in for a real MAC; what the experiments need is
//! that unauthorized bitstreams are rejected on the control path, which
//! this preserves.

use crate::clock::ClockDomain;
use crate::resources::ResourceBudget;

/// An opaque 64-bit authorization tag over a bitstream's content and key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthTag(pub u64);

/// Computes the keyed tag for a bitstream body.
///
/// FNV-1a over the key then the payload — *not* a cryptographic MAC, but a
/// stand-in with the same control-flow role (reject-on-mismatch).
pub fn authorize(key: u64, payload: &[u8]) -> AuthTag {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes().iter().chain(payload.iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    AuthTag(h)
}

/// A partial bitstream ready to be streamed through the ICAP into a slot.
#[derive(Debug, Clone)]
pub struct Bitstream {
    /// Human-readable kernel name (e.g. "kv-lookup", "lsm-compaction").
    pub name: String,
    /// Resources the placed kernel occupies.
    pub requires: ResourceBudget,
    /// Bitstream size in bytes (drives ICAP streaming time).
    pub size_bytes: u64,
    /// Clock the kernel closes timing at.
    pub clock: ClockDomain,
    /// Authorization tag checked by the configuration kernel.
    pub tag: AuthTag,
}

impl Bitstream {
    /// Builds a bitstream for a kernel, deriving a plausible partial
    /// bitstream size from the area it occupies and signing it with `key`.
    pub fn new(
        name: impl Into<String>,
        requires: ResourceBudget,
        clock: ClockDomain,
        key: u64,
    ) -> Bitstream {
        let name = name.into();
        // Partial bitstream size scales with configured frames; ~128 bytes
        // of configuration per LUT-equivalent cell is the right order for
        // UltraScale+ partials (tens of MB for large regions).
        let size_bytes = 1_000_000 + requires.luts * 128 + requires.brams * 4_608;
        let tag = authorize(key, name.as_bytes());
        Bitstream {
            name,
            requires,
            size_bytes,
            clock,
            tag,
        }
    }

    /// Verifies the authorization tag against `key`.
    pub fn verify(&self, key: u64) -> bool {
        authorize(key, self.name.as_bytes()) == self.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> ResourceBudget {
        ResourceBudget {
            luts: 10_000,
            ffs: 20_000,
            brams: 16,
            urams: 0,
            dsps: 8,
        }
    }

    #[test]
    fn size_scales_with_area() {
        let small = Bitstream::new("a", budget(), ClockDomain::new(250), 1);
        let mut big_req = budget();
        big_req.luts *= 10;
        let big = Bitstream::new("b", big_req, ClockDomain::new(250), 1);
        assert!(big.size_bytes > small.size_bytes);
    }

    #[test]
    fn verify_accepts_correct_key_only() {
        let bs = Bitstream::new("kernel", budget(), ClockDomain::new(250), 0xDEAD);
        assert!(bs.verify(0xDEAD));
        assert!(!bs.verify(0xBEEF));
    }

    #[test]
    fn tag_depends_on_payload() {
        assert_ne!(authorize(1, b"x"), authorize(1, b"y"));
        assert_ne!(authorize(1, b"x"), authorize(2, b"x"));
    }
}
