//! Calibration constants for the FPGA fabric model.
//!
//! All figures are taken from the Xilinx Alveo U280 data sheet (the board
//! the Hyperion prototype is built around, paper §2 and Figure 1) and from
//! the partial-reconfiguration timescales the paper cites (10–100 ms, §2).
//! They are model *inputs*; experiments report ratios and shapes, never
//! these constants themselves.

use hyperion_sim::energy::MilliWatts;
use hyperion_sim::time::Ns;

use crate::resources::ResourceBudget;

/// Total programmable resources of an Alveo U280 (XCU280 die).
pub const U280_BUDGET: ResourceBudget = ResourceBudget {
    luts: 1_304_000,
    ffs: 2_607_000,
    brams: 2_016,
    urams: 960,
    dsps: 9_024,
};

/// Default kernel clock for synthesized pipelines (a typical closed
/// frequency for data-path kernels on UltraScale+).
pub const DEFAULT_CLOCK_MHZ: u64 = 250;

/// HBM2 stack capacity on the U280 (8 GiB).
pub const HBM_CAPACITY: u64 = 8 << 30;

/// HBM2 aggregate bandwidth (~460 GB/s) expressed in bits/s.
pub const HBM_BANDWIDTH_BPS: u64 = 3_680_000_000_000;

/// HBM2 random access latency seen from fabric logic.
pub const HBM_LATENCY: Ns = Ns(120);

/// On-board DDR4 capacity (2 x 16 GiB DIMMs).
pub const DDR_CAPACITY: u64 = 32 << 30;

/// DDR4-2400 dual-channel bandwidth (~38 GB/s) in bits/s.
pub const DDR_BANDWIDTH_BPS: u64 = 304_000_000_000;

/// DDR4 random access latency seen from fabric logic.
pub const DDR_LATENCY: Ns = Ns(200);

/// Aggregate BRAM bandwidth is effectively wire-speed for our flows; model
/// a deep on-chip SRAM port (~1 TB/s class) with single-cycle-ish latency.
pub const BRAM_BANDWIDTH_BPS: u64 = 8_000_000_000_000;

/// BRAM access latency (one 250 MHz cycle).
pub const BRAM_LATENCY: Ns = Ns(4);

/// BRAM capacity: 2,016 blocks x 36 Kib = ~8.9 MiB usable.
pub const BRAM_CAPACITY: u64 = 2_016 * (36 * 1024) / 8;

/// URAM capacity: 960 blocks x 288 Kib = 33.75 MiB.
pub const URAM_CAPACITY: u64 = 960 * (288 * 1024) / 8;

/// ICAP (Internal Configuration Access Port) programming throughput.
///
/// ~800 MB/s for UltraScale+ ICAP at 200 MHz x 32 bit; together with
/// partial-bitstream sizes this lands reconfiguration in the paper's
/// 10–100 ms band.
pub const ICAP_BANDWIDTH_BPS: u64 = 6_400_000_000;

/// Fixed overhead of a partial reconfiguration (shutdown, decouple,
/// startup sequencing) on top of bitstream streaming time.
pub const RECONFIG_OVERHEAD: Ns = Ns::from_millis(8);

/// Static power of the powered board (shell, HBM refresh, transceivers).
pub const BOARD_STATIC_POWER: MilliWatts = MilliWatts::from_watts(35);

/// Maximum TDP of the Hyperion DPU assembly as reported in the paper
/// (~230 W including SSDs).
pub const HYPERION_MAX_TDP: MilliWatts = MilliWatts::from_watts(230);

/// Dynamic energy per LUT per cycle of active logic, in picojoules.
///
/// Order-of-magnitude figure for UltraScale+ logic toggling at moderate
/// activity factors; used to scale pipeline energy with occupied area.
pub const LUT_DYNAMIC_PJ_PER_CYCLE_MILLI: u64 = 5; // 0.005 pJ

/// Energy per byte moved through HBM (pJ/B).
pub const HBM_PJ_PER_BYTE: u64 = 4;

/// Energy per byte moved through DDR4 (pJ/B).
pub const DDR_PJ_PER_BYTE: u64 = 20;

/// Boot-time JTAG/self-test duration before the DPU is standalone (§2:
/// "boots in a stand-alone mode ... when power is applied and FPGA JTAG
/// self-tests are passed").
pub const SELF_TEST_DURATION: Ns = Ns::from_millis(250);
