//! # hyperion-fabric — the FPGA substrate
//!
//! A behavioural model of the Xilinx Alveo U280 board the Hyperion
//! prototype is built on (paper §2, Figures 1–2): programmable-area
//! accounting, clock domains, heterogeneous memory tiers (BRAM/URAM/HBM/
//! DDR), slot-style spatial multiplexing with ICAP partial reconfiguration,
//! and the AXI-stream interconnect of the Figure 2 schematic.
//!
//! The model's fidelity target is the *systems* behaviour the paper argues
//! from — placement feasibility, 10–100 ms reconfiguration, deterministic
//! pipeline clocks, bandwidth contention, and energy — not gate-level
//! simulation. See DESIGN.md §2 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axi;
pub mod bitstream;
pub mod clock;
pub mod memtier;
pub mod params;
pub mod resources;
pub mod slots;

pub use axi::{AxiError, AxiSwitch, PortId};
pub use bitstream::{authorize, AuthTag, Bitstream};
pub use clock::ClockDomain;
pub use memtier::{MemoryTier, Tier};
pub use resources::ResourceBudget;
pub use slots::{Resident, SlotError, SlotId, SlotManager};

use hyperion_sim::energy::{EnergyMeter, Pj};
use hyperion_sim::time::Ns;

/// The assembled fabric of one Hyperion board.
///
/// Owns the slot manager, the four memory tiers, the stream switch, and the
/// board energy meter. Higher layers (the `hyperion` core crate) wire the
/// QSFP and PCIe endpoints onto [`Fabric::switch`].
#[derive(Debug)]
pub struct Fabric {
    /// Slot manager over the die.
    pub slots: SlotManager,
    /// Memory tiers indexed by [`Tier`].
    tiers: [MemoryTier; 4],
    /// The Figure-2 AXI-stream switch.
    pub switch: AxiSwitch,
    /// Board energy meter (static power; dynamic charges come from tiers
    /// and pipelines).
    pub energy: EnergyMeter,
}

impl Fabric {
    /// Builds a U280-parameterized fabric with `n_slots` reconfigurable
    /// slots and the given bitstream authorization key.
    pub fn u280(n_slots: usize, auth_key: u64) -> Fabric {
        Fabric {
            slots: SlotManager::new(params::U280_BUDGET, n_slots, auth_key),
            tiers: [
                MemoryTier::with_defaults(Tier::Bram),
                MemoryTier::with_defaults(Tier::Uram),
                MemoryTier::with_defaults(Tier::Hbm),
                MemoryTier::with_defaults(Tier::Ddr),
            ],
            switch: AxiSwitch::new(ClockDomain::new(params::DEFAULT_CLOCK_MHZ), 64),
            energy: EnergyMeter::new(params::BOARD_STATIC_POWER),
        }
    }

    /// The default clock domain kernels close timing at.
    pub fn kernel_clock(&self) -> ClockDomain {
        ClockDomain::new(params::DEFAULT_CLOCK_MHZ)
    }

    /// Access a memory tier.
    pub fn tier(&self, t: Tier) -> &MemoryTier {
        &self.tiers[tier_index(t)]
    }

    /// Mutable access to a memory tier.
    pub fn tier_mut(&mut self, t: Tier) -> &mut MemoryTier {
        &mut self.tiers[tier_index(t)]
    }

    /// Integrates board static power over `dt` and returns the total energy
    /// including dynamic memory-transfer energy so far.
    pub fn account_energy(&mut self, dt: Ns) -> Pj {
        self.energy.run_for(dt);
        let dynamic: Pj = self.tiers.iter().map(|t| t.transfer_energy()).sum();
        self.energy.total() + dynamic
    }
}

fn tier_index(t: Tier) -> usize {
    match t {
        Tier::Bram => 0,
        Tier::Uram => 1,
        Tier::Hbm => 2,
        Tier::Ddr => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_fabric_assembles() {
        let f = Fabric::u280(5, 7);
        assert_eq!(f.slots.num_slots(), 5);
        assert_eq!(f.tier(Tier::Hbm).capacity(), params::HBM_CAPACITY);
        assert!(f.switch.bandwidth_bps() >= 100_000_000_000);
    }

    #[test]
    fn tier_round_trip_by_enum() {
        let mut f = Fabric::u280(2, 7);
        assert!(f.tier_mut(Tier::Ddr).reserve(1 << 20));
        assert_eq!(f.tier(Tier::Ddr).allocated(), 1 << 20);
        assert_eq!(f.tier(Tier::Hbm).allocated(), 0);
    }

    #[test]
    fn energy_combines_static_and_memory_transfers() {
        let mut f = Fabric::u280(2, 7);
        f.tier_mut(Tier::Hbm).access(Ns::ZERO, 1_000_000);
        let total = f.account_energy(Ns::from_millis(1));
        // 35 W x 1 ms = 35 mJ static, plus 4 pJ/B x 1 MB = 4 uJ dynamic.
        assert!(total.as_joules_f64() > 0.035);
        assert!(total.as_joules_f64() < 0.036);
    }
}
