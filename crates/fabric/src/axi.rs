//! The AXI-stream interconnect of Figure 2.
//!
//! The schematic routes both QSFP ports through MUX/DEMUX into an
//! AXIS arbiter, across the accelerator row, and out through a second
//! arbiter toward the NVMe host IP core and PCIe bridges. We model the
//! switch as a set of named endpoints connected through a shared arbiter
//! with a fixed per-beat width and clock: transfers contend on the arbiter
//! and pay a small routing latency, which is how on-die streaming actually
//! behaves at this abstraction level.

use std::collections::HashMap;

use hyperion_sim::resource::Resource;
use hyperion_sim::time::Ns;

use crate::clock::ClockDomain;

/// A named endpoint on the stream switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub u32);

/// Errors from the stream switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiError {
    /// The referenced port was never registered.
    UnknownPort(u32),
    /// A port name was registered twice.
    DuplicatePort(&'static str),
}

impl std::fmt::Display for AxiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiError::UnknownPort(p) => write!(f, "unknown AXIS port {p}"),
            AxiError::DuplicatePort(n) => write!(f, "duplicate AXIS port name {n}"),
        }
    }
}

impl std::error::Error for AxiError {}

/// The AXI-stream switch: registered ports plus a shared arbiter.
#[derive(Debug)]
pub struct AxiSwitch {
    clock: ClockDomain,
    bytes_per_beat: u64,
    arbiter: Resource,
    route_latency: Ns,
    ports: Vec<&'static str>,
    by_name: HashMap<&'static str, PortId>,
    transfers: u64,
    bytes: u64,
}

impl AxiSwitch {
    /// Creates a switch with the given beat width (bytes per clock cycle
    /// across the arbiter) in the given clock domain.
    ///
    /// The Hyperion datapath uses 512-bit (64-byte) AXIS at 250 MHz, which
    /// comfortably carries 100 GbE line rate (64 B x 250 MHz = 16 GB/s).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_beat` is zero.
    pub fn new(clock: ClockDomain, bytes_per_beat: u64) -> AxiSwitch {
        assert!(bytes_per_beat > 0, "beat width must be non-zero");
        AxiSwitch {
            clock,
            bytes_per_beat,
            arbiter: Resource::new("axis-arbiter", 1),
            route_latency: clock.cycles_to_ns(4), // MUX/DEMUX + arbiter stages
            ports: Vec::new(),
            by_name: HashMap::new(),
            transfers: 0,
            bytes: 0,
        }
    }

    /// Registers a named endpoint and returns its id.
    pub fn add_port(&mut self, name: &'static str) -> Result<PortId, AxiError> {
        if self.by_name.contains_key(name) {
            return Err(AxiError::DuplicatePort(name));
        }
        let id = PortId(self.ports.len() as u32);
        self.ports.push(name);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<PortId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of a port.
    pub fn port_name(&self, id: PortId) -> Result<&'static str, AxiError> {
        self.ports
            .get(id.0 as usize)
            .copied()
            .ok_or(AxiError::UnknownPort(id.0))
    }

    /// Streams `bytes` from `src` to `dst` starting no earlier than `now`;
    /// returns the instant the last beat lands.
    pub fn stream(
        &mut self,
        src: PortId,
        dst: PortId,
        now: Ns,
        bytes: u64,
    ) -> Result<Ns, AxiError> {
        if src.0 as usize >= self.ports.len() {
            return Err(AxiError::UnknownPort(src.0));
        }
        if dst.0 as usize >= self.ports.len() {
            return Err(AxiError::UnknownPort(dst.0));
        }
        let beats = bytes.div_ceil(self.bytes_per_beat).max(1);
        let svc = self.clock.cycles_to_ns(beats);
        self.transfers += 1;
        self.bytes += bytes;
        Ok(self.arbiter.access(now, svc) + self.route_latency)
    }

    /// Effective switch bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bytes_per_beat * 8 * self.clock.mhz() * 1_000_000
    }

    /// Total transfers arbitrated.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch() -> AxiSwitch {
        AxiSwitch::new(ClockDomain::new(250), 64)
    }

    #[test]
    fn carries_100gbe_line_rate() {
        let s = switch();
        assert!(s.bandwidth_bps() >= 100_000_000_000);
    }

    #[test]
    fn ports_are_named_and_unique() {
        let mut s = switch();
        let q0 = s.add_port("qsfp0").unwrap();
        let nv = s.add_port("nvme").unwrap();
        assert_ne!(q0, nv);
        assert_eq!(s.port("qsfp0"), Some(q0));
        assert_eq!(s.add_port("qsfp0"), Err(AxiError::DuplicatePort("qsfp0")));
    }

    #[test]
    fn stream_time_scales_with_beats() {
        let mut s = switch();
        let a = s.add_port("a").unwrap();
        let b = s.add_port("b").unwrap();
        // 64 bytes = 1 beat = 4 ns + 16 ns routing.
        let t1 = s.stream(a, b, Ns::ZERO, 64).unwrap();
        assert_eq!(t1, Ns(20));
        // 6400 bytes = 100 beats = 400 ns service, queued behind beat 1.
        let t2 = s.stream(a, b, Ns::ZERO, 6400).unwrap();
        assert_eq!(t2, Ns(4 + 400 + 16));
    }

    #[test]
    fn unknown_ports_error() {
        let mut s = switch();
        let a = s.add_port("a").unwrap();
        assert!(matches!(
            s.stream(a, PortId(99), Ns::ZERO, 64),
            Err(AxiError::UnknownPort(99))
        ));
    }
}
