//! Heterogeneous on-board memory tiers: BRAM, URAM, HBM, DDR.
//!
//! The single-level store (paper §2.1) places segments across these tiers
//! plus NVMe; each tier is a bandwidth-limited queueing station with a
//! fixed access latency and a per-byte energy cost.

use hyperion_sim::energy::Pj;
use hyperion_sim::resource::Resource;
use hyperion_sim::time::{serialization_delay, Ns};

use crate::params;

/// The identity of a memory tier on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// On-fabric block RAM: tiny, single-cycle.
    Bram,
    /// UltraRAM: larger on-fabric SRAM.
    Uram,
    /// High Bandwidth Memory stacks.
    Hbm,
    /// On-board DDR4.
    Ddr,
}

impl Tier {
    /// All tiers from fastest to slowest.
    pub const ALL: [Tier; 4] = [Tier::Bram, Tier::Uram, Tier::Hbm, Tier::Ddr];
}

/// One memory tier: capacity, latency, a bandwidth timeline, and energy.
#[derive(Debug, Clone)]
pub struct MemoryTier {
    tier: Tier,
    capacity: u64,
    allocated: u64,
    latency: Ns,
    bandwidth_bps: u64,
    port: Resource,
    pj_per_byte: u64,
    bytes_moved: u64,
}

impl MemoryTier {
    /// Creates a tier with explicit parameters.
    pub fn new(
        tier: Tier,
        capacity: u64,
        latency: Ns,
        bandwidth_bps: u64,
        pj_per_byte: u64,
    ) -> MemoryTier {
        MemoryTier {
            tier,
            capacity,
            allocated: 0,
            latency,
            bandwidth_bps,
            port: Resource::new(tier_name(tier), 1),
            pj_per_byte,
            bytes_moved: 0,
        }
    }

    /// Creates the tier with its U280 default parameters.
    pub fn with_defaults(tier: Tier) -> MemoryTier {
        match tier {
            Tier::Bram => MemoryTier::new(
                tier,
                params::BRAM_CAPACITY,
                params::BRAM_LATENCY,
                params::BRAM_BANDWIDTH_BPS,
                1,
            ),
            Tier::Uram => MemoryTier::new(
                tier,
                params::URAM_CAPACITY,
                params::BRAM_LATENCY,
                params::BRAM_BANDWIDTH_BPS,
                1,
            ),
            Tier::Hbm => MemoryTier::new(
                tier,
                params::HBM_CAPACITY,
                params::HBM_LATENCY,
                params::HBM_BANDWIDTH_BPS,
                params::HBM_PJ_PER_BYTE,
            ),
            Tier::Ddr => MemoryTier::new(
                tier,
                params::DDR_CAPACITY,
                params::DDR_LATENCY,
                params::DDR_BANDWIDTH_BPS,
                params::DDR_PJ_PER_BYTE,
            ),
        }
    }

    /// Which tier this is.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved by allocations.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes still available for allocation.
    pub fn free(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Reserves `bytes`; returns `false` (and reserves nothing) if the tier
    /// lacks capacity.
    pub fn reserve(&mut self, bytes: u64) -> bool {
        if bytes <= self.free() {
            self.allocated += bytes;
            true
        } else {
            false
        }
    }

    /// Releases a previous reservation.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is allocated (an accounting bug in the
    /// caller).
    pub fn release(&mut self, bytes: u64) {
        assert!(
            bytes <= self.allocated,
            "releasing {bytes} B but only {} B allocated on {}",
            self.allocated,
            tier_name(self.tier)
        );
        self.allocated -= bytes;
    }

    /// Performs a transfer of `bytes` starting no earlier than `now`;
    /// returns the completion instant. Reads and writes share the port.
    pub fn access(&mut self, now: Ns, bytes: u64) -> Ns {
        let svc = serialization_delay(bytes, self.bandwidth_bps);
        self.bytes_moved += bytes;
        self.port.access(now, svc) + self.latency
    }

    /// Fixed access latency (without queueing or transfer time).
    pub fn latency(&self) -> Ns {
        self.latency
    }

    /// Energy consumed by all transfers so far.
    pub fn transfer_energy(&self) -> Pj {
        Pj(self.bytes_moved as u128 * self.pj_per_byte as u128)
    }

    /// Total bytes transferred.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

fn tier_name(t: Tier) -> &'static str {
    match t {
        Tier::Bram => "bram",
        Tier::Uram => "uram",
        Tier::Hbm => "hbm",
        Tier::Ddr => "ddr",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_fast_to_slow() {
        let tiers: Vec<MemoryTier> = Tier::ALL
            .iter()
            .map(|&t| MemoryTier::with_defaults(t))
            .collect();
        for w in tiers.windows(2) {
            assert!(w[0].latency() <= w[1].latency());
        }
        // Capacity grows down the hierarchy.
        assert!(tiers[0].capacity() < tiers[2].capacity());
        assert!(tiers[2].capacity() < tiers[3].capacity());
    }

    #[test]
    fn reserve_and_release_accounting() {
        let mut t = MemoryTier::new(Tier::Hbm, 1000, Ns(10), 8_000_000_000, 4);
        assert!(t.reserve(600));
        assert!(!t.reserve(500));
        assert_eq!(t.free(), 400);
        t.release(600);
        assert_eq!(t.free(), 1000);
    }

    #[test]
    fn access_includes_latency_and_queues() {
        // 1 GB/s = 8 Gbps: 1000 bytes -> 1000 ns transfer; 50 ns latency.
        let mut t = MemoryTier::new(Tier::Ddr, 1 << 20, Ns(50), 8_000_000_000, 4);
        assert_eq!(t.access(Ns(0), 1000), Ns(1050));
        // Second transfer queues behind the first on the port.
        assert_eq!(t.access(Ns(0), 1000), Ns(2050));
    }

    #[test]
    fn transfer_energy_scales_with_bytes() {
        let mut t = MemoryTier::new(Tier::Hbm, 1 << 20, Ns(10), 8_000_000_000, 4);
        t.access(Ns(0), 1000);
        assert_eq!(t.transfer_energy(), Pj(4000));
    }
}
