//! Slot-style spatial multiplexing with partial dynamic reconfiguration.
//!
//! Paper §2.2: "We expect to leverage the already established slot-style
//! spatial slicing of FPGA resources" (AmorphOS/Coyote style), and §2:
//! "FPGAs excel in coarse-grained spatial multiplexing with longer
//! time-scales (10–100 msecs, partial reconfiguration)". Slots are carved
//! statically from the die; kernels are streamed into slots through the
//! ICAP, which is a serial resource — concurrent reconfigurations queue,
//! but *resident* slots keep running undisturbed (the predictability
//! property experiment E8 measures).

use std::fmt;

use hyperion_sim::resource::Resource;
use hyperion_sim::time::{serialization_delay, Ns};
use hyperion_telemetry::{Component, Recorder};

use crate::bitstream::Bitstream;
use crate::params;
use crate::resources::ResourceBudget;

/// Index of a reconfigurable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub usize);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Errors from slot management.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotError {
    /// The slot index does not exist.
    NoSuchSlot(usize),
    /// The kernel does not fit in the slot's resource share.
    DoesNotFit {
        /// Slot that was targeted.
        slot: usize,
        /// The binding occupancy fraction (>1 means over budget).
        occupancy: f64,
    },
    /// The bitstream failed authorization.
    Unauthorized,
    /// The slot is occupied and eviction was not requested.
    Occupied(usize),
    /// The slot is empty (nothing to evict).
    Empty(usize),
    /// No slot is free (when asking for automatic placement).
    AllBusy,
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::NoSuchSlot(i) => write!(f, "no such slot: {i}"),
            SlotError::DoesNotFit { slot, occupancy } => {
                write!(
                    f,
                    "kernel does not fit slot {slot} (occupancy {occupancy:.2})"
                )
            }
            SlotError::Unauthorized => write!(f, "bitstream failed authorization"),
            SlotError::Occupied(i) => write!(f, "slot {i} is occupied"),
            SlotError::Empty(i) => write!(f, "slot {i} is empty"),
            SlotError::AllBusy => write!(f, "all slots are occupied"),
        }
    }
}

impl std::error::Error for SlotError {}

/// A resident kernel in a slot.
#[derive(Debug, Clone)]
pub struct Resident {
    /// The deployed bitstream.
    pub bitstream: Bitstream,
    /// When the slot finished reconfiguring and the kernel went live.
    pub live_since: Ns,
}

/// The slot manager: carves the die, authorizes and places bitstreams,
/// and serializes reconfigurations through the ICAP.
#[derive(Debug)]
pub struct SlotManager {
    slot_budget: ResourceBudget,
    slots: Vec<Option<Resident>>,
    icap: Resource,
    auth_key: u64,
    reconfigs: u64,
}

impl SlotManager {
    /// Carves `n_slots` equal slots out of `die` and locks the control path
    /// to `auth_key`.
    ///
    /// # Panics
    ///
    /// Panics if `n_slots` is zero.
    pub fn new(die: ResourceBudget, n_slots: usize, auth_key: u64) -> SlotManager {
        assert!(n_slots > 0, "need at least one slot");
        SlotManager {
            slot_budget: die.split(n_slots as u64),
            slots: vec![None; n_slots],
            icap: Resource::new("icap", 1),
            auth_key,
            reconfigs: 0,
        }
    }

    /// The per-slot resource share.
    pub fn slot_budget(&self) -> ResourceBudget {
        self.slot_budget
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently holding a resident kernel (the occupancy
    /// figure the telemetry gauges report).
    pub fn occupied_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns the resident kernel of a slot, if any.
    pub fn resident(&self, slot: SlotId) -> Option<&Resident> {
        self.slots.get(slot.0).and_then(|s| s.as_ref())
    }

    /// Number of reconfigurations performed.
    pub fn reconfig_count(&self) -> u64 {
        self.reconfigs
    }

    /// Finds the lowest-numbered free slot.
    pub fn free_slot(&self) -> Option<SlotId> {
        self.slots.iter().position(|s| s.is_none()).map(SlotId)
    }

    /// Streams `bitstream` into `slot` starting at `now`.
    ///
    /// Returns the instant the kernel goes live. The duration is ICAP
    /// streaming time (serialized across concurrent requests) plus the
    /// fixed shutdown/startup overhead — landing in the paper's 10–100 ms
    /// band for realistic partial sizes.
    ///
    /// Fails if the tag does not verify, the kernel does not fit, or the
    /// slot is occupied (use [`SlotManager::evict`] first).
    pub fn program(
        &mut self,
        slot: SlotId,
        bitstream: Bitstream,
        now: Ns,
    ) -> Result<Ns, SlotError> {
        if slot.0 >= self.slots.len() {
            return Err(SlotError::NoSuchSlot(slot.0));
        }
        if !bitstream.verify(self.auth_key) {
            return Err(SlotError::Unauthorized);
        }
        if !bitstream.requires.fits_in(&self.slot_budget) {
            return Err(SlotError::DoesNotFit {
                slot: slot.0,
                occupancy: bitstream.requires.occupancy_of(&self.slot_budget),
            });
        }
        if self.slots[slot.0].is_some() {
            return Err(SlotError::Occupied(slot.0));
        }
        let stream = serialization_delay(bitstream.size_bytes, params::ICAP_BANDWIDTH_BPS);
        let live = self.icap.access(now, stream) + params::RECONFIG_OVERHEAD;
        self.slots[slot.0] = Some(Resident {
            bitstream,
            live_since: live,
        });
        self.reconfigs += 1;
        Ok(live)
    }

    /// [`SlotManager::program`] with a telemetry span over the
    /// reconfiguration. When the recorder's utilization plane is on, the
    /// ICAP's streaming window is claimed as `fabric:icap`, slot occupancy
    /// is sampled as a `fabric:slots` depth timeline, and a reconfiguration
    /// that had to wait for the ICAP gets a queueing edge blaming it.
    /// Timing is identical to the untraced path.
    pub fn program_traced(
        &mut self,
        slot: SlotId,
        bitstream: Bitstream,
        now: Ns,
        rec: &mut Recorder,
    ) -> Result<Ns, SlotError> {
        let span = rec.open(Component::Fabric, "fabric:reconfig", now);
        let icap_start = self.icap.earliest_start(now);
        let live = match self.program(slot, bitstream, now) {
            Ok(live) => live,
            Err(e) => {
                rec.close(span, now);
                return Err(e);
            }
        };
        if rec.util_enabled() {
            let stream_end = live - params::RECONFIG_OVERHEAD;
            rec.claim_busy("fabric:icap", icap_start, stream_end);
            rec.depth_sample("fabric:slots", now, self.occupied_slots() as u64);
            if icap_start > now {
                rec.queue_edge_labeled(span, icap_start, "fabric:icap");
            }
        } else if icap_start > now {
            rec.queue_edge(span, icap_start);
        }
        rec.close(span, live);
        Ok(live)
    }

    /// Programs the bitstream into the first free slot.
    pub fn program_anywhere(
        &mut self,
        bitstream: Bitstream,
        now: Ns,
    ) -> Result<(SlotId, Ns), SlotError> {
        let slot = self.free_slot().ok_or(SlotError::AllBusy)?;
        let live = self.program(slot, bitstream, now)?;
        Ok((slot, live))
    }

    /// Evicts the resident kernel of `slot`, returning it.
    pub fn evict(&mut self, slot: SlotId) -> Result<Resident, SlotError> {
        if slot.0 >= self.slots.len() {
            return Err(SlotError::NoSuchSlot(slot.0));
        }
        self.slots[slot.0].take().ok_or(SlotError::Empty(slot.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    const KEY: u64 = 0xC0FFEE;

    fn small_kernel(name: &str) -> Bitstream {
        Bitstream::new(
            name,
            ResourceBudget {
                luts: 50_000,
                ffs: 80_000,
                brams: 64,
                urams: 8,
                dsps: 32,
            },
            ClockDomain::new(250),
            KEY,
        )
    }

    fn mgr() -> SlotManager {
        SlotManager::new(params::U280_BUDGET, 5, KEY)
    }

    #[test]
    fn reconfiguration_lands_in_paper_band() {
        let mut m = mgr();
        let live = m.program(SlotId(0), small_kernel("k"), Ns::ZERO).unwrap();
        // Paper: 10-100 ms partial reconfiguration timescales.
        assert!(
            live >= Ns::from_millis(9) && live <= Ns::from_millis(100),
            "reconfig took {live}"
        );
    }

    #[test]
    fn icap_serializes_concurrent_reconfigs() {
        let mut m = mgr();
        let a = m.program(SlotId(0), small_kernel("a"), Ns::ZERO).unwrap();
        let b = m.program(SlotId(1), small_kernel("b"), Ns::ZERO).unwrap();
        assert!(b > a, "second reconfiguration must queue on the ICAP");
    }

    #[test]
    fn traced_reconfig_claims_the_icap_and_labels_queued_streams() {
        let mut m = mgr();
        let mut rec = Recorder::new("fabric-util");
        rec.enable_util();
        let a = m
            .program_traced(SlotId(0), small_kernel("a"), Ns::ZERO, &mut rec)
            .unwrap();
        let b = m
            .program_traced(SlotId(1), small_kernel("b"), Ns::ZERO, &mut rec)
            .unwrap();
        let icap = rec.util().resource("fabric:icap").expect("icap claimed");
        // Two back-to-back streams coalesce into one contiguous window.
        assert_eq!(icap.claims(), 2);
        assert_eq!(icap.intervals().len(), 1);
        assert_eq!(icap.busy_ns(), (b - params::RECONFIG_OVERHEAD) - Ns::ZERO);
        // Only the second reconfiguration waited; its edge blames the ICAP.
        assert_eq!(rec.edge_resources().len(), 1);
        assert_eq!(rec.edge_resources()[0].1, "fabric:icap");
        let slots = rec.util().resource("fabric:slots").expect("depth sampled");
        assert_eq!(slots.peak_depth(), 2);
        // Timing parity with the untraced path.
        let mut plain = mgr();
        assert_eq!(plain.program(SlotId(0), small_kernel("a"), Ns::ZERO), Ok(a));
        assert_eq!(plain.program(SlotId(1), small_kernel("b"), Ns::ZERO), Ok(b));
    }

    #[test]
    fn unauthorized_bitstreams_are_rejected() {
        let mut m = mgr();
        let rogue = Bitstream::new(
            "rogue",
            ResourceBudget::ZERO,
            ClockDomain::new(250),
            0xBAD_C0DE,
        );
        assert_eq!(
            m.program(SlotId(0), rogue, Ns::ZERO),
            Err(SlotError::Unauthorized)
        );
    }

    #[test]
    fn oversized_kernels_do_not_fit() {
        let mut m = mgr();
        let huge = Bitstream::new(
            "huge",
            params::U280_BUDGET, // whole die into a 1/5 slot
            ClockDomain::new(250),
            KEY,
        );
        match m.program(SlotId(0), huge, Ns::ZERO) {
            Err(SlotError::DoesNotFit { occupancy, .. }) => assert!(occupancy > 4.9),
            other => panic!("expected DoesNotFit, got {other:?}"),
        }
    }

    #[test]
    fn occupied_slots_require_eviction() {
        let mut m = mgr();
        m.program(SlotId(2), small_kernel("a"), Ns::ZERO).unwrap();
        assert!(matches!(
            m.program(SlotId(2), small_kernel("b"), Ns::ZERO),
            Err(SlotError::Occupied(2))
        ));
        m.evict(SlotId(2)).unwrap();
        assert!(m.program(SlotId(2), small_kernel("b"), Ns::ZERO).is_ok());
    }

    #[test]
    fn program_anywhere_fills_slots_in_order() {
        let mut m = mgr();
        for expect in 0..m.num_slots() {
            let (slot, _) = m.program_anywhere(small_kernel("k"), Ns::ZERO).unwrap();
            assert_eq!(slot, SlotId(expect));
        }
        assert!(matches!(
            m.program_anywhere(small_kernel("k"), Ns::ZERO),
            Err(SlotError::AllBusy)
        ));
    }
}
