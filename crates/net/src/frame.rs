//! Packet and flow representations for the data plane.
//!
//! The middleware workloads (fail2ban-style logging, L4 load balancing,
//! paper §2.4) classify traffic by 5-tuple; this module provides the wire
//! metadata those pipelines consume and helpers for sizing packets.

use bytes::Bytes;

use crate::params;

/// An IPv4 5-tuple identifying a transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowKey {
    /// A stable 64-bit hash of the 5-tuple (FNV-1a), used for consistent
    /// hashing in the load balancer and for flow-table indexing.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in self.src_ip.to_be_bytes() {
            feed(b);
        }
        for b in self.dst_ip.to_be_bytes() {
            feed(b);
        }
        for b in self.src_port.to_be_bytes() {
            feed(b);
        }
        for b in self.dst_port.to_be_bytes() {
            feed(b);
        }
        feed(self.proto);
        h
    }
}

/// A packet as seen by an in-fabric pipeline: flow metadata plus payload.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The 5-tuple.
    pub flow: FlowKey,
    /// Payload bytes (header bytes are accounted separately on the wire).
    pub payload: Bytes,
    /// TCP flags byte (SYN = 0x02, FIN = 0x01, RST = 0x04); zero for UDP.
    pub tcp_flags: u8,
}

impl Packet {
    /// Total wire size of this packet including headers.
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + params::HEADER_BYTES
    }
}

/// Splits a message of `bytes` into MTU-sized packets and returns the
/// total wire bytes including per-packet headers.
///
/// # Examples
///
/// ```
/// use hyperion_net::frame::wire_bytes_for_message;
///
/// // A 1-byte message still costs one header.
/// assert_eq!(wire_bytes_for_message(1), 79);
/// ```
pub fn wire_bytes_for_message(bytes: u64) -> u64 {
    let packets = packets_for_message(bytes);
    bytes + packets * params::HEADER_BYTES
}

/// Number of MTU-sized packets needed for a message (at least one, so that
/// zero-payload control messages still cost a packet).
pub fn packets_for_message(bytes: u64) -> u64 {
    bytes.div_ceil(params::MTU).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            src_port: 1000 + n as u16,
            dst_port: 80,
            proto: 6,
        }
    }

    #[test]
    fn hash_is_stable_and_distinguishes_flows() {
        assert_eq!(key(1).hash64(), key(1).hash64());
        assert_ne!(key(1).hash64(), key(2).hash64());
    }

    #[test]
    fn packetization_rounds_up() {
        assert_eq!(packets_for_message(0), 1);
        assert_eq!(packets_for_message(1500), 1);
        assert_eq!(packets_for_message(1501), 2);
        assert_eq!(packets_for_message(150_000), 100);
    }

    #[test]
    fn wire_bytes_include_per_packet_headers() {
        assert_eq!(wire_bytes_for_message(1500), 1500 + 78);
        assert_eq!(wire_bytes_for_message(3000), 3000 + 2 * 78);
    }

    #[test]
    fn packet_wire_size() {
        let p = Packet {
            flow: key(0),
            payload: Bytes::from_static(&[0u8; 100]),
            tcp_flags: 0x02,
        };
        assert_eq!(p.wire_bytes(), 178);
    }
}
