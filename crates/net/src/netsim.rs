//! The rack network: nodes joined by a single cut-through switch.
//!
//! Hyperion follows the directly network-attached model (paper §2): DPUs,
//! clients, and servers are all first-class nodes on the rack switch. Each
//! node owns a full-duplex link; a message serializes on the sender's
//! uplink, traverses the switch, and serializes on the receiver's downlink
//! (which is where incast congestion appears).

use hyperion_sim::fault::FaultPlan;
use hyperion_sim::resource::Link;
use hyperion_sim::time::Ns;
use hyperion_telemetry::{Recorder, SpanId};

use crate::frame::wire_bytes_for_message;
use crate::params;

/// Identifies a node on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Errors from the network model.
///
/// `UnknownNode` is a caller mistake; the remaining variants are injected
/// hardware faults (see [`Network::set_fault_plan`]) that the transport
/// retry layer is expected to absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// Referenced node does not exist.
    UnknownNode(usize),
    /// The message was dropped in flight (injected loss); the sender
    /// learns nothing until its timeout expires.
    Dropped,
    /// The message arrived at `delivered_at` but failed its checksum
    /// (injected corruption); the wire time was paid for nothing.
    Corrupted {
        /// When the corrupt frame finished arriving.
        delivered_at: Ns,
    },
    /// A link on the path is down until `until` (injected flap window).
    LinkDown {
        /// When the link comes back up.
        until: Ns,
    },
    /// A reliable-delivery retry loop exhausted its attempt budget.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Dropped => write!(f, "message dropped in flight"),
            NetError::Corrupted { delivered_at } => {
                write!(f, "message corrupted (arrived at {delivered_at})")
            }
            NetError::LinkDown { until } => write!(f, "link down until {until}"),
            NetError::Exhausted { attempts } => {
                write!(f, "gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetError {}

struct Node {
    uplink: Link,
    downlink: Link,
}

/// Utilization observer for one traced delivery: claims the wire windows
/// the message occupies and labels `span`'s queueing edge with the link
/// that gated it. Every method no-ops while the recorder's utilization
/// plane is disabled (not even the resource-id string is built).
struct DeliveryObs<'a> {
    rec: &'a mut Recorder,
    span: Option<SpanId>,
}

impl DeliveryObs<'_> {
    fn claim(&mut self, dir: &str, node: NodeId, start: Ns, end: Ns) {
        if self.rec.util_enabled() {
            self.rec
                .claim_busy(&format!("net:{dir}:{}", node.0), start, end);
        }
    }

    fn edge(&mut self, ready: Ns, dir: &str, node: NodeId) {
        let Some(span) = self.span else { return };
        if self.rec.util_enabled() {
            self.rec
                .queue_edge_labeled(span, ready, &format!("net:{dir}:{}", node.0));
        }
    }
}

/// The rack network.
pub struct Network {
    nodes: Vec<Node>,
    switch_latency: Ns,
    messages: u64,
    bytes: u64,
    faults: FaultPlan,
}

/// Fault site: each delivery is lost with the configured probability.
pub const FAULT_NET_DROP: &str = "net:drop";
/// Fault site: each delivery arrives corrupt with the configured probability.
pub const FAULT_NET_CORRUPT: &str = "net:corrupt";
/// Fault site: scheduled windows during which every delivery fails
/// with [`NetError::LinkDown`] (link flap).
pub const FAULT_NET_FLAP: &str = "net:flap";
/// Fault site *family*: `node:partition:<node>` — scheduled windows
/// during which every delivery to or from that node is silently dropped
/// ([`NetError::Dropped`]). Unlike a link flap, nothing is visible at the
/// sender's NIC: the node is alive but unreachable, which is what makes
/// fenced zombies possible. Build concrete names with [`partition_site`].
pub const FAULT_NODE_PARTITION: &str = "node:partition";

/// The concrete fault-site name partitioning `node` (see
/// [`FAULT_NODE_PARTITION`]).
pub fn partition_site(node: NodeId) -> String {
    format!("{FAULT_NODE_PARTITION}:{}", node.0)
}

impl Network {
    /// Creates an empty network with default switch latency.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            switch_latency: params::SWITCH_LATENCY,
            messages: 0,
            bytes: 0,
            faults: FaultPlan::none(),
        }
    }

    /// Installs a fault plan. Sites consulted: [`FAULT_NET_DROP`],
    /// [`FAULT_NET_CORRUPT`] (Bernoulli per delivery),
    /// [`FAULT_NET_FLAP`] and per-node [`FAULT_NODE_PARTITION`] sites
    /// (scheduled windows). The default empty plan adds no draws and no
    /// timing perturbation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan (for counter export).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Adds a node with full-duplex 100 GbE connectivity; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_node_with_bandwidth(params::LINK_100G_BPS)
    }

    /// Adds a node with a custom link bandwidth (bits/s).
    pub fn add_node_with_bandwidth(&mut self, bps: u64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            uplink: Link::new("uplink", bps, params::RACK_PROPAGATION),
            downlink: Link::new("downlink", bps, params::RACK_PROPAGATION),
        });
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Delivers a `bytes`-long message from `src` to `dst`, starting no
    /// earlier than `now`. Returns the arrival instant of the last byte.
    ///
    /// The message is packetized (per-packet header overhead), serializes
    /// FIFO on the sender uplink and the receiver downlink, and pays one
    /// switch traversal. Messages between distinct node pairs share only
    /// the links they actually use.
    pub fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Ns,
        bytes: u64,
    ) -> Result<Ns, NetError> {
        self.deliver_inner(src, dst, now, bytes, None)
    }

    /// [`Network::deliver`] with utilization instrumentation: the wire
    /// windows the message occupies are claimed busy on
    /// `net:uplink:<src>` / `net:downlink:<dst>`, and when the message
    /// had to wait for a busy wire, `span` (if given) gets a queueing
    /// edge labeled with the gating link. Timing and fault behavior are
    /// identical to `deliver`; with the recorder's utilization plane
    /// disabled this records nothing at all.
    pub fn deliver_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Ns,
        bytes: u64,
        rec: &mut Recorder,
        span: Option<SpanId>,
    ) -> Result<Ns, NetError> {
        self.deliver_inner(src, dst, now, bytes, Some(DeliveryObs { rec, span }))
    }

    fn deliver_inner(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Ns,
        bytes: u64,
        mut obs: Option<DeliveryObs<'_>>,
    ) -> Result<Ns, NetError> {
        let wire = wire_bytes_for_message(bytes);
        if src.0 >= self.nodes.len() {
            return Err(NetError::UnknownNode(src.0));
        }
        if dst.0 >= self.nodes.len() {
            return Err(NetError::UnknownNode(dst.0));
        }
        self.messages += 1;
        self.bytes += wire;
        // Link flap: carrier loss is visible at the NIC before any byte
        // is spent on the wire.
        if !self.faults.is_empty() {
            if self.faults.fires(FAULT_NET_FLAP, now) {
                let until = self
                    .faults
                    .window_end(FAULT_NET_FLAP, now)
                    .unwrap_or(now + self.switch_latency);
                return Err(NetError::LinkDown { until });
            }
            if self.faults.fires(FAULT_NET_DROP, now) {
                // The frame still occupies the uplink until the drop point.
                if src != dst {
                    let (s, e, _) = self.nodes[src.0].uplink.transmit_interval(now, wire);
                    if let Some(o) = obs.as_mut() {
                        o.claim("uplink", src, s, e);
                    }
                }
                return Err(NetError::Dropped);
            }
            // Partition: the switch silently blackholes traffic touching a
            // partitioned node. `active` is a pure window query, so the
            // Bernoulli streams above are never perturbed by these checks.
            if self.faults.active(&partition_site(src), now)
                || self.faults.active(&partition_site(dst), now)
            {
                if src != dst {
                    // The sender's frame still leaves its NIC; the loss is
                    // invisible until the sender's timeout expires.
                    let (s, e, _) = self.nodes[src.0].uplink.transmit_interval(now, wire);
                    if let Some(o) = obs.as_mut() {
                        o.claim("uplink", src, s, e);
                    }
                }
                return Err(NetError::Dropped);
            }
        }
        if src == dst {
            // Loopback: no wire traversal, one switch-latency hop.
            return Ok(now + self.switch_latency);
        }
        let (up_start, up_end, up_done) = self.nodes[src.0].uplink.transmit_interval(now, wire);
        let at_switch = up_done + self.switch_latency;
        // Cut-through at message granularity: the downlink starts no
        // earlier than the head arrives and re-serializes the wire bytes.
        let (down_start, down_end, delivered) = self.nodes[dst.0]
            .downlink
            .transmit_interval(at_switch, wire);
        if let Some(o) = obs.as_mut() {
            o.claim("uplink", src, up_start, up_end);
            o.claim("downlink", dst, down_start, down_end);
            // The dominant wire wait labels the span's queueing edge:
            // downlink congestion (incast) wins over uplink congestion
            // because it gates later in the path.
            if down_start > at_switch {
                o.edge(down_start, "downlink", dst);
            } else if up_start > now {
                o.edge(up_start, "uplink", src);
            }
        }
        if !self.faults.is_empty() && self.faults.fires(FAULT_NET_CORRUPT, delivered) {
            // Full wire time paid; the checksum fails on arrival.
            return Err(NetError::Corrupted {
                delivered_at: delivered,
            });
        }
        Ok(delivered)
    }

    /// The idle (uncontended) one-way latency for a message of `bytes`.
    pub fn base_latency(&self, bytes: u64) -> Ns {
        let wire = wire_bytes_for_message(bytes);
        let ser = hyperion_sim::serialization_delay(wire, params::LINK_100G_BPS);
        // Uplink serialization + propagation + switch + downlink
        // serialization + propagation.
        ser + params::RACK_PROPAGATION + self.switch_latency + ser + params::RACK_PROPAGATION
    }

    /// Total messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total wire bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("messages", &self.messages)
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_microsecond_class() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.deliver(a, b, Ns::ZERO, 64).unwrap();
        // 2 x 500ns propagation + 300ns switch + 2 x ~12ns serialization.
        assert!(t > Ns(1_300) && t < Ns(2_000), "latency {t}");
    }

    #[test]
    fn distinct_pairs_do_not_contend() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        let d = net.add_node();
        let t1 = net.deliver(a, b, Ns::ZERO, 1 << 20).unwrap();
        let t2 = net.deliver(c, d, Ns::ZERO, 1 << 20).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn incast_contends_on_receiver_downlink() {
        let mut net = Network::new();
        let sinks = net.add_node();
        let s1 = net.add_node();
        let s2 = net.add_node();
        let t1 = net.deliver(s1, sinks, Ns::ZERO, 1 << 20).unwrap();
        let t2 = net.deliver(s2, sinks, Ns::ZERO, 1 << 20).unwrap();
        assert!(t2 > t1, "second sender must queue at the downlink");
    }

    #[test]
    fn unknown_nodes_error() {
        let mut net = Network::new();
        let a = net.add_node();
        assert!(net.deliver(a, NodeId(7), Ns::ZERO, 10).is_err());
    }

    #[test]
    fn loopback_skips_the_wire() {
        let mut net = Network::new();
        let a = net.add_node();
        let t = net.deliver(a, a, Ns::ZERO, 1 << 20).unwrap();
        assert_eq!(t, Ns::ZERO + params::SWITCH_LATENCY);
    }

    #[test]
    fn drop_faults_fail_some_deliveries_deterministically() {
        let run = || {
            let mut net = Network::new();
            let a = net.add_node();
            let b = net.add_node();
            net.set_fault_plan(FaultPlan::seeded(11).bernoulli(FAULT_NET_DROP, 0.5));
            (0..64)
                .map(|i| net.deliver(a, b, Ns(i * 10_000), 64).is_ok())
                .collect::<Vec<bool>>()
        };
        let x = run();
        assert!(x.iter().any(|ok| *ok) && x.iter().any(|ok| !*ok));
        assert_eq!(x, run());
    }

    #[test]
    fn flap_window_reports_when_the_link_returns() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.set_fault_plan(FaultPlan::seeded(1).window(FAULT_NET_FLAP, Ns(100), Ns(500)));
        assert!(net.deliver(a, b, Ns(0), 64).is_ok());
        match net.deliver(a, b, Ns(200), 64) {
            Err(NetError::LinkDown { until }) => assert_eq!(until, Ns(500)),
            other => panic!("expected LinkDown, got {other:?}"),
        }
        assert!(net.deliver(a, b, Ns(500), 64).is_ok());
    }

    #[test]
    fn partitioned_node_is_silently_unreachable_both_ways() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        net.set_fault_plan(FaultPlan::seeded(1).window(&partition_site(b), Ns(1_000), Ns(5_000)));
        // Before the window: clean.
        assert!(net.deliver(a, b, Ns(0), 64).is_ok());
        // Inside the window: both directions blackhole, silently.
        assert_eq!(net.deliver(a, b, Ns(2_000), 64), Err(NetError::Dropped));
        assert_eq!(net.deliver(b, a, Ns(2_000), 64), Err(NetError::Dropped));
        // Unrelated pairs are untouched.
        assert!(net.deliver(a, c, Ns(2_000), 64).is_ok());
        // After the window: the node is reachable again.
        assert!(net.deliver(a, b, Ns(5_000), 64).is_ok());
    }

    #[test]
    fn partition_checks_do_not_perturb_bernoulli_streams() {
        // Two networks with the same drop plan; one also has a partition
        // site for a node that never sends. The drop outcomes on the
        // unpartitioned pair must be identical.
        let run = |partition: bool| {
            let mut net = Network::new();
            let a = net.add_node();
            let b = net.add_node();
            let c = net.add_node();
            let mut plan = FaultPlan::seeded(11).bernoulli(FAULT_NET_DROP, 0.5);
            if partition {
                plan = plan.window(&partition_site(c), Ns(0), Ns::MAX);
            }
            net.set_fault_plan(plan);
            (0..64)
                .map(|i| net.deliver(a, b, Ns(i * 10_000), 64).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corruption_pays_the_wire_time() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let clean = net.base_latency(4096);
        net.set_fault_plan(FaultPlan::seeded(1).bernoulli(FAULT_NET_CORRUPT, 1.0));
        match net.deliver(a, b, Ns::ZERO, 4096) {
            Err(NetError::Corrupted { delivered_at }) => assert_eq!(delivered_at, clean),
            other => panic!("expected Corrupted, got {other:?}"),
        }
    }

    #[test]
    fn base_latency_matches_uncontended_delivery() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let est = net.base_latency(4096);
        let t = net.deliver(a, b, Ns::ZERO, 4096).unwrap();
        assert_eq!(t, est);
    }
}
