//! The rack network: nodes joined by a single cut-through switch.
//!
//! Hyperion follows the directly network-attached model (paper §2): DPUs,
//! clients, and servers are all first-class nodes on the rack switch. Each
//! node owns a full-duplex link; a message serializes on the sender's
//! uplink, traverses the switch, and serializes on the receiver's downlink
//! (which is where incast congestion appears).

use hyperion_sim::resource::Link;
use hyperion_sim::time::Ns;

use crate::frame::wire_bytes_for_message;
use crate::params;

/// Identifies a node on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Errors from the network model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Referenced node does not exist.
    UnknownNode(usize),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for NetError {}

struct Node {
    uplink: Link,
    downlink: Link,
}

/// The rack network.
pub struct Network {
    nodes: Vec<Node>,
    switch_latency: Ns,
    messages: u64,
    bytes: u64,
}

impl Network {
    /// Creates an empty network with default switch latency.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            switch_latency: params::SWITCH_LATENCY,
            messages: 0,
            bytes: 0,
        }
    }

    /// Adds a node with full-duplex 100 GbE connectivity; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_node_with_bandwidth(params::LINK_100G_BPS)
    }

    /// Adds a node with a custom link bandwidth (bits/s).
    pub fn add_node_with_bandwidth(&mut self, bps: u64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            uplink: Link::new("uplink", bps, params::RACK_PROPAGATION),
            downlink: Link::new("downlink", bps, params::RACK_PROPAGATION),
        });
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Delivers a `bytes`-long message from `src` to `dst`, starting no
    /// earlier than `now`. Returns the arrival instant of the last byte.
    ///
    /// The message is packetized (per-packet header overhead), serializes
    /// FIFO on the sender uplink and the receiver downlink, and pays one
    /// switch traversal. Messages between distinct node pairs share only
    /// the links they actually use.
    pub fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Ns,
        bytes: u64,
    ) -> Result<Ns, NetError> {
        let wire = wire_bytes_for_message(bytes);
        if src.0 >= self.nodes.len() {
            return Err(NetError::UnknownNode(src.0));
        }
        if dst.0 >= self.nodes.len() {
            return Err(NetError::UnknownNode(dst.0));
        }
        self.messages += 1;
        self.bytes += wire;
        if src == dst {
            // Loopback: no wire traversal, one switch-latency hop.
            return Ok(now + self.switch_latency);
        }
        let up_done = self.nodes[src.0].uplink.transmit(now, wire);
        let at_switch = up_done + self.switch_latency;
        // Cut-through at message granularity: the downlink starts no
        // earlier than the head arrives and re-serializes the wire bytes.
        Ok(self.nodes[dst.0].downlink.transmit(at_switch, wire))
    }

    /// The idle (uncontended) one-way latency for a message of `bytes`.
    pub fn base_latency(&self, bytes: u64) -> Ns {
        let wire = wire_bytes_for_message(bytes);
        let ser = hyperion_sim::serialization_delay(wire, params::LINK_100G_BPS);
        // Uplink serialization + propagation + switch + downlink
        // serialization + propagation.
        ser + params::RACK_PROPAGATION + self.switch_latency + ser + params::RACK_PROPAGATION
    }

    /// Total messages delivered.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total wire bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("messages", &self.messages)
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_microsecond_class() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.deliver(a, b, Ns::ZERO, 64).unwrap();
        // 2 x 500ns propagation + 300ns switch + 2 x ~12ns serialization.
        assert!(t > Ns(1_300) && t < Ns(2_000), "latency {t}");
    }

    #[test]
    fn distinct_pairs_do_not_contend() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        let d = net.add_node();
        let t1 = net.deliver(a, b, Ns::ZERO, 1 << 20).unwrap();
        let t2 = net.deliver(c, d, Ns::ZERO, 1 << 20).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn incast_contends_on_receiver_downlink() {
        let mut net = Network::new();
        let sinks = net.add_node();
        let s1 = net.add_node();
        let s2 = net.add_node();
        let t1 = net.deliver(s1, sinks, Ns::ZERO, 1 << 20).unwrap();
        let t2 = net.deliver(s2, sinks, Ns::ZERO, 1 << 20).unwrap();
        assert!(t2 > t1, "second sender must queue at the downlink");
    }

    #[test]
    fn unknown_nodes_error() {
        let mut net = Network::new();
        let a = net.add_node();
        assert!(net.deliver(a, NodeId(7), Ns::ZERO, 10).is_err());
    }

    #[test]
    fn loopback_skips_the_wire() {
        let mut net = Network::new();
        let a = net.add_node();
        let t = net.deliver(a, a, Ns::ZERO, 1 << 20).unwrap();
        assert_eq!(t, Ns::ZERO + params::SWITCH_LATENCY);
    }

    #[test]
    fn base_latency_matches_uncontended_delivery() {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let est = net.base_latency(4096);
        let t = net.deliver(a, b, Ns::ZERO, 4096).unwrap();
        assert_eq!(t, est);
    }
}
