//! Application-defined transports: UDP, TCP, RDMA, Homa.
//!
//! Paper §2: "The end-to-end hardware path can be specialized with ... an
//! application-defined network transport (TCP, UDP, RDMA, HOMA)". The four
//! models share the same wire (the [`Network`]) but differ in endpoint
//! costs, reliability machinery, and multi-round behaviour — the properties
//! that move the pointer-chasing and middleware experiments.

use hyperion_sim::rng::SplitMix64;
use hyperion_sim::time::Ns;
use hyperion_telemetry::{Component, Recorder, SpanId};

use crate::frame::packets_for_message;
use crate::netsim::{NetError, Network, NodeId};
use crate::params;

/// Who processes messages at a node: the paper's contrast between
/// CPU-free hardware pipelines and host software stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// An in-fabric pipeline (Hyperion): parse/steer in hardware.
    Hardware,
    /// A kernel socket stack (syscalls, softirq, copies).
    Kernel,
    /// A kernel-bypass userspace stack (DPDK-class).
    Bypass,
}

impl EndpointKind {
    /// Fixed per-message processing cost.
    pub fn per_message(self) -> Ns {
        match self {
            EndpointKind::Hardware => params::HW_ENDPOINT,
            EndpointKind::Kernel => params::KERNEL_ENDPOINT,
            EndpointKind::Bypass => params::BYPASS_ENDPOINT,
        }
    }

    /// Additional per-packet processing cost (beyond the first packet).
    pub fn per_packet(self) -> Ns {
        match self {
            EndpointKind::Hardware => Ns(10),
            EndpointKind::Kernel => Ns(500),
            EndpointKind::Bypass => Ns(100),
        }
    }

    fn processing(self, bytes: u64) -> Ns {
        let extra = packets_for_message(bytes).saturating_sub(1);
        self.per_message() + self.per_packet() * extra
    }
}

/// A network endpoint: a node plus its processing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The node on the rack network.
    pub node: NodeId,
    /// How this node processes messages.
    pub kind: EndpointKind,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(node: NodeId, kind: EndpointKind) -> Endpoint {
        Endpoint { node, kind }
    }
}

/// The transport protocol in use on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Unreliable datagrams.
    Udp,
    /// Reliable byte stream with slow-start window growth.
    Tcp,
    /// One-sided remote memory verbs; the remote CPU is bypassed.
    Rdma,
    /// Receiver-driven (grant-based) datacenter transport.
    Homa,
}

impl TransportKind {
    /// All transports, in the order the paper lists them (§2).
    pub const ALL: [TransportKind; 4] = [
        TransportKind::Tcp,
        TransportKind::Udp,
        TransportKind::Homa,
        TransportKind::Rdma,
    ];

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp",
            TransportKind::Tcp => "tcp",
            TransportKind::Rdma => "rdma",
            TransportKind::Homa => "homa",
        }
    }

    /// Telemetry span label for a one-way send over this transport.
    pub fn send_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:send",
            TransportKind::Tcp => "tcp:send",
            TransportKind::Rdma => "rdma:send",
            TransportKind::Homa => "homa:send",
        }
    }

    /// Telemetry span label for a request/response exchange.
    pub fn request_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:request",
            TransportKind::Tcp => "tcp:request",
            TransportKind::Rdma => "rdma:request",
            TransportKind::Homa => "homa:request",
        }
    }

    /// Telemetry span label for a reliable (retrying) send.
    pub fn reliable_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:send_reliable",
            TransportKind::Tcp => "tcp:send_reliable",
            TransportKind::Rdma => "rdma:send_reliable",
            TransportKind::Homa => "homa:send_reliable",
        }
    }

    /// Telemetry span label for a reliable (retrying) request/response.
    pub fn reliable_request_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:request_reliable",
            TransportKind::Tcp => "tcp:request_reliable",
            TransportKind::Rdma => "rdma:request_reliable",
            TransportKind::Homa => "homa:request_reliable",
        }
    }
}

/// Outcome of a one-way message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Instant the message is fully processed at the receiver.
    pub done: Ns,
    /// Network round trips consumed (1 one-way traversal = 0 extra RTTs;
    /// window/grant rounds add whole RTTs).
    pub wire_rounds: u64,
}

/// Retry policy for reliable delivery over a faulty wire: a fixed
/// attempt budget, a loss-detection timeout, and capped exponential
/// backoff with deterministic jitter.
///
/// Everything runs on the virtual clock; the jitter for attempt `k` is a
/// pure function of `(jitter_seed, k)`, so a seeded run replays the same
/// retry timeline bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// How long the sender waits for an ack before declaring a silent
    /// loss (applies to [`NetError::Dropped`]).
    pub timeout: Ns,
    /// Backoff before the second attempt; doubles per attempt.
    pub backoff_base: Ns,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Ns,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A reasonable datacenter default: 5 attempts, 100 µs loss timeout,
    /// 10 µs initial backoff capped at 1 ms.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 5,
        timeout: Ns(100_000),
        backoff_base: Ns(10_000),
        backoff_cap: Ns(1_000_000),
        jitter_seed: 0x5EED,
    };

    /// The backoff before retry number `attempt` (0-based: the wait
    /// after the first failure is `backoff(0)`): `base * 2^attempt`,
    /// capped, plus deterministic jitter in `[0, capped/4]`.
    pub fn backoff(&self, attempt: u32) -> Ns {
        let exp = self
            .backoff_base
            .0
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.backoff_cap.0);
        let jitter_range = exp / 4 + 1;
        let jitter = SplitMix64::new(self.jitter_seed ^ attempt as u64).next_u64() % jitter_range;
        Ns(exp + jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// Outcome of a reliable (retrying) delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableDelivery {
    /// Instant the message is fully processed at the receiver.
    pub done: Ns,
    /// Send attempts consumed (1 = no fault on the first try).
    pub attempts: u32,
    /// Wire rounds of the successful attempt.
    pub wire_rounds: u64,
}

/// A transport instance (stateless; connection state is abstracted into
/// the per-message cost model).
#[derive(Debug, Clone, Copy)]
pub struct Transport {
    kind: TransportKind,
}

impl Transport {
    /// Creates a transport of the given kind.
    pub fn new(kind: TransportKind) -> Transport {
        Transport { kind }
    }

    /// The protocol in use.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Extra full RTTs a message of `bytes` needs beyond its first
    /// traversal (TCP slow-start rounds, Homa grant round).
    fn extra_rounds(&self, bytes: u64) -> u64 {
        match self.kind {
            TransportKind::Udp | TransportKind::Rdma => 0,
            TransportKind::Tcp => {
                // Slow start from the initial window, doubling per RTT.
                let mut window = params::TCP_INIT_CWND * params::MTU;
                let mut rounds = 0;
                let mut sent = window.min(bytes);
                while sent < bytes {
                    window *= 2;
                    sent = (sent + window).min(bytes);
                    rounds += 1;
                }
                rounds
            }
            TransportKind::Homa => {
                // Unscheduled bytes go immediately; anything longer waits
                // one grant round, after which grants pipeline with data.
                if bytes > params::HOMA_UNSCHEDULED {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Endpoint cost at the receiver; RDMA one-sided verbs bypass the
    /// remote processor entirely and pay only the NIC.
    fn rx_cost(&self, ep: EndpointKind, bytes: u64) -> Ns {
        match self.kind {
            TransportKind::Rdma => params::RDMA_NIC,
            _ => ep.processing(bytes),
        }
    }

    fn tx_cost(&self, ep: EndpointKind, bytes: u64) -> Ns {
        match self.kind {
            TransportKind::Rdma => params::RDMA_NIC,
            _ => ep.processing(bytes),
        }
    }

    /// Sends one message and returns its delivery outcome.
    pub fn send(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
    ) -> Result<Delivery, NetError> {
        self.send_obs(net, from, to, now, bytes, None)
    }

    /// [`Transport::send`] with optional utilization observation: when a
    /// recorder rides along, the wire windows are claimed busy on the
    /// links ([`Network::deliver_traced`]) and a busy-wire wait labels
    /// `span`'s queueing edge. Timing is identical to `send`.
    fn send_obs(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
        obs: Option<(&mut Recorder, Option<SpanId>)>,
    ) -> Result<Delivery, NetError> {
        let start = now + self.tx_cost(from.kind, bytes);
        let rounds = self.extra_rounds(bytes);
        // Each extra round costs one base RTT of control traffic before
        // the tail of the data lands.
        let round_penalty = net.base_latency(64) * rounds;
        let arrival = match obs {
            Some((rec, span)) => net.deliver_traced(from.node, to.node, start, bytes, rec, span)?,
            None => net.deliver(from.node, to.node, start, bytes)?,
        };
        let done = arrival + round_penalty + self.rx_cost(to.kind, bytes);
        Ok(Delivery {
            done,
            wire_rounds: rounds,
        })
    }

    /// Sends one message with loss recovery: injected faults
    /// ([`NetError::Dropped`], [`NetError::Corrupted`],
    /// [`NetError::LinkDown`]) are retried under `policy` — timeout on a
    /// silent loss, immediate NACK on corruption, wait-for-carrier on a
    /// flap — each followed by capped exponential backoff with
    /// deterministic jitter. Caller mistakes ([`NetError::UnknownNode`])
    /// are not retried; an exhausted budget returns
    /// [`NetError::Exhausted`].
    pub fn send_reliable(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
        policy: &RetryPolicy,
    ) -> Result<ReliableDelivery, NetError> {
        let attempts = policy.max_attempts.max(1);
        let mut t = now;
        for attempt in 0..attempts {
            match self.send(net, from, to, t, bytes) {
                Ok(d) => {
                    return Ok(ReliableDelivery {
                        done: d.done,
                        attempts: attempt + 1,
                        wire_rounds: d.wire_rounds,
                    })
                }
                Err(NetError::Dropped) => {
                    // Nothing came back: burn the full loss timeout.
                    t += policy.timeout + policy.backoff(attempt);
                }
                Err(NetError::Corrupted { delivered_at }) => {
                    // The receiver saw the bad checksum and NACKed.
                    t = delivered_at.max(t) + policy.backoff(attempt);
                }
                Err(NetError::LinkDown { until }) => {
                    // Carrier loss is visible: wait for the link, then
                    // back off to avoid the post-flap thundering herd.
                    t = until.max(t) + policy.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::Exhausted { attempts })
    }

    /// [`Transport::send_reliable`] with telemetry: a `*:send_reliable`
    /// span covering the whole recovery, a queueing edge at the instant
    /// the successful attempt finally started (so `critical_path`
    /// attributes retry waits as queueing, not service), and
    /// `net:retries` / `net:timeouts` / `net:gave_up` counters.
    #[allow(clippy::too_many_arguments)]
    pub fn send_reliable_traced(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
        policy: &RetryPolicy,
        rec: &mut Recorder,
    ) -> Result<ReliableDelivery, NetError> {
        let span = rec.open(Component::Net, self.kind.reliable_label(), now);
        let attempts = policy.max_attempts.max(1);
        let mut t = now;
        let mut result = Err(NetError::Exhausted { attempts });
        for attempt in 0..attempts {
            match self.send_obs(net, from, to, t, bytes, Some((rec, None))) {
                Ok(d) => {
                    result = Ok(ReliableDelivery {
                        done: d.done,
                        attempts: attempt + 1,
                        wire_rounds: d.wire_rounds,
                    });
                    break;
                }
                Err(NetError::Dropped) => {
                    rec.bump("net:timeouts");
                    rec.bump("net:retries");
                    rec.instant("fault:net:drop", t);
                    t += policy.timeout + policy.backoff(attempt);
                }
                Err(NetError::Corrupted { delivered_at }) => {
                    rec.bump("net:corrupt");
                    rec.bump("net:retries");
                    rec.instant("fault:net:corrupt", delivered_at);
                    t = delivered_at.max(t) + policy.backoff(attempt);
                }
                Err(NetError::LinkDown { until }) => {
                    rec.bump("net:link_down");
                    rec.bump("net:retries");
                    rec.instant("fault:net:flap", t);
                    t = until.max(t) + policy.backoff(attempt);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if t > now {
            // Recovery time is queueing, not service.
            rec.queue_edge(span, t);
        }
        match &result {
            Ok(d) => rec.close(span, d.done),
            Err(e) => {
                if matches!(e, NetError::Exhausted { .. }) {
                    rec.bump("net:gave_up");
                }
                rec.close(span, t.max(now));
            }
        }
        result
    }

    /// A full request/response exchange with loss recovery: the *whole*
    /// exchange (request leg, server work, response leg) is retried as a
    /// unit under `policy` — the RPC idiom, where a client that hears
    /// nothing back cannot tell which leg was lost and simply re-issues.
    /// Recovery semantics per fault match [`Transport::send_reliable`];
    /// an exhausted budget returns [`NetError::Exhausted`].
    #[allow(clippy::too_many_arguments)]
    pub fn request_reliable(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
        policy: &RetryPolicy,
    ) -> Result<ReliableDelivery, NetError> {
        let attempts = policy.max_attempts.max(1);
        let mut t = now;
        for attempt in 0..attempts {
            match self.request(net, client, server, t, req_bytes, resp_bytes, server_work) {
                Ok(d) => {
                    return Ok(ReliableDelivery {
                        done: d.done,
                        attempts: attempt + 1,
                        wire_rounds: d.wire_rounds,
                    })
                }
                Err(NetError::Dropped) => {
                    t += policy.timeout + policy.backoff(attempt);
                }
                Err(NetError::Corrupted { delivered_at }) => {
                    t = delivered_at.max(t) + policy.backoff(attempt);
                }
                Err(NetError::LinkDown { until }) => {
                    t = until.max(t) + policy.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::Exhausted { attempts })
    }

    /// [`Transport::request_reliable`] with telemetry: a
    /// `*:request_reliable` span covering the whole recovery, a queueing
    /// edge at the instant the successful attempt started (retry waits
    /// are queueing, not service), and the same `net:*` counters as
    /// [`Transport::send_reliable_traced`].
    #[allow(clippy::too_many_arguments)]
    pub fn request_reliable_traced(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
        policy: &RetryPolicy,
        rec: &mut Recorder,
    ) -> Result<ReliableDelivery, NetError> {
        let span = rec.open(Component::Net, self.kind.reliable_request_label(), now);
        let attempts = policy.max_attempts.max(1);
        let mut t = now;
        let mut result = Err(NetError::Exhausted { attempts });
        for attempt in 0..attempts {
            match self.request_obs(
                net,
                client,
                server,
                t,
                req_bytes,
                resp_bytes,
                server_work,
                Some(rec),
            ) {
                Ok(d) => {
                    result = Ok(ReliableDelivery {
                        done: d.done,
                        attempts: attempt + 1,
                        wire_rounds: d.wire_rounds,
                    });
                    break;
                }
                Err(NetError::Dropped) => {
                    rec.bump("net:timeouts");
                    rec.bump("net:retries");
                    rec.instant("fault:net:drop", t);
                    t += policy.timeout + policy.backoff(attempt);
                }
                Err(NetError::Corrupted { delivered_at }) => {
                    rec.bump("net:corrupt");
                    rec.bump("net:retries");
                    rec.instant("fault:net:corrupt", delivered_at);
                    t = delivered_at.max(t) + policy.backoff(attempt);
                }
                Err(NetError::LinkDown { until }) => {
                    rec.bump("net:link_down");
                    rec.bump("net:retries");
                    rec.instant("fault:net:flap", t);
                    t = until.max(t) + policy.backoff(attempt);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if t > now {
            rec.queue_edge(span, t);
        }
        match &result {
            Ok(d) => rec.close(span, d.done),
            Err(e) => {
                if matches!(e, NetError::Exhausted { .. }) {
                    rec.bump("net:gave_up");
                }
                rec.close(span, t.max(now));
            }
        }
        result
    }

    /// A full request/response exchange: client → server (request),
    /// `server_work` at the server, server → client (response).
    ///
    /// Returns the completion instant at the client and the total number
    /// of one-way traversals consumed (for RTT accounting in E6).
    ///
    /// For RDMA this models a one-sided READ: the request is a verb header
    /// and the server's *CPU* contributes no work (`server_work` is still
    /// charged — it stands for device-side work like a flash read — but no
    /// kernel processing is added).
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
    ) -> Result<Delivery, NetError> {
        self.request_obs(
            net,
            client,
            server,
            now,
            req_bytes,
            resp_bytes,
            server_work,
            None,
        )
    }

    /// [`Transport::request`] with optional utilization observation on
    /// both legs (see [`Transport::send_obs`]). Timing is identical.
    #[allow(clippy::too_many_arguments)]
    fn request_obs(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
        mut rec: Option<&mut Recorder>,
    ) -> Result<Delivery, NetError> {
        let req = self.send_obs(
            net,
            client,
            server,
            now,
            req_bytes,
            rec.as_deref_mut().map(|r| (r, None)),
        )?;
        let served = req.done + server_work;
        let resp = self.send_obs(
            net,
            server,
            client,
            served,
            resp_bytes,
            rec.map(|r| (r, None)),
        )?;
        Ok(Delivery {
            done: resp.done,
            wire_rounds: 1 + req.wire_rounds + resp.wire_rounds,
        })
    }

    /// [`Transport::send`] with a telemetry span covering the delivery
    /// (endpoint processing + wire + extra rounds). When the protocol
    /// burns control round trips before the tail of the data can land
    /// (TCP slow-start windows, Homa's grant round), the span gets a
    /// queueing edge of that length: the head of the delivery was spent
    /// waiting on the protocol, not moving payload bytes.
    ///
    /// With the recorder's utilization plane enabled the wire windows are
    /// additionally claimed busy on `net:uplink:<src>` /
    /// `net:downlink:<dst>`, and a busy-wire wait relabels the span's
    /// queueing edge with the gating link (the latest resource wait wins).
    pub fn send_traced(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let span = rec.open(Component::Net, self.kind.send_label(), now);
        let rounds = self.extra_rounds(bytes);
        if rounds > 0 {
            rec.queue_edge(span, now + net.base_latency(64) * rounds);
        }
        match self.send_obs(net, from, to, now, bytes, Some((rec, Some(span)))) {
            Ok(d) => {
                rec.close(span, d.done);
                Ok(d)
            }
            Err(e) => {
                rec.close(span, now);
                Err(e)
            }
        }
    }

    /// [`Transport::request`] with per-leg telemetry: a `*:request` span
    /// covering the whole exchange, nested `*:send` spans for each leg,
    /// and the server residency recorded as a [`Component::Service`] hop.
    #[allow(clippy::too_many_arguments)]
    pub fn request_traced(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let span = rec.open(Component::Net, self.kind.request_label(), now);
        let result = (|| {
            let req = self.send_traced(net, client, server, now, req_bytes, rec)?;
            let served = req.done + server_work;
            if server_work > Ns::ZERO {
                rec.record_hop(Component::Service, "server:work", req.done, served);
            }
            let resp = self.send_traced(net, server, client, served, resp_bytes, rec)?;
            Ok(Delivery {
                done: resp.done,
                wire_rounds: 1 + req.wire_rounds + resp.wire_rounds,
            })
        })();
        match &result {
            Ok(d) => rec.close(span, d.done),
            Err(_) => rec.close(span, now),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(kind: EndpointKind) -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Endpoint::new(net.add_node(), kind);
        let b = Endpoint::new(net.add_node(), kind);
        (net, a, b)
    }

    #[test]
    fn udp_small_message_is_fast() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let d = Transport::new(TransportKind::Udp)
            .send(&mut net, a, b, Ns::ZERO, 64)
            .unwrap();
        assert!(d.done < Ns(3_000), "udp small message: {}", d.done);
        assert_eq!(d.wire_rounds, 0);
    }

    #[test]
    fn tcp_pays_slow_start_on_large_messages() {
        let (mut net, a, b) = pair(EndpointKind::Kernel);
        let tcp = Transport::new(TransportKind::Tcp);
        let small = tcp.send(&mut net, a, b, Ns::ZERO, 1_000).unwrap();
        assert_eq!(small.wire_rounds, 0);
        let large = tcp.send(&mut net, a, b, Ns::ZERO, 1_000_000).unwrap();
        assert!(large.wire_rounds >= 3, "rounds: {}", large.wire_rounds);
    }

    #[test]
    fn rdma_bypasses_kernel_endpoints() {
        let (mut net, a, b) = pair(EndpointKind::Kernel);
        let udp = Transport::new(TransportKind::Udp)
            .send(&mut net, a, b, Ns::ZERO, 4096)
            .unwrap();
        let (mut net2, a2, b2) = pair(EndpointKind::Kernel);
        let rdma = Transport::new(TransportKind::Rdma)
            .send(&mut net2, a2, b2, Ns::ZERO, 4096)
            .unwrap();
        assert!(
            rdma.done + Ns(4_000) < udp.done,
            "rdma {} vs udp {}",
            rdma.done,
            udp.done
        );
    }

    #[test]
    fn homa_is_udp_like_until_unscheduled_limit() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let homa = Transport::new(TransportKind::Homa);
        let short = homa.send(&mut net, a, b, Ns::ZERO, 32 * 1024).unwrap();
        assert_eq!(short.wire_rounds, 0);
        let long = homa.send(&mut net, a, b, Ns::ZERO, 256 * 1024).unwrap();
        assert_eq!(long.wire_rounds, 1);
    }

    #[test]
    fn request_counts_one_rtt_minimum() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let d = Transport::new(TransportKind::Udp)
            .request(&mut net, a, b, Ns::ZERO, 64, 4096, Ns(1_000))
            .unwrap();
        assert_eq!(d.wire_rounds, 1);
        assert!(d.done > Ns(1_000));
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let p = RetryPolicy::DEFAULT;
        for k in 0..16 {
            let b = p.backoff(k);
            let exp = p.backoff_base.0.saturating_mul(1 << k).min(p.backoff_cap.0);
            assert!(b.0 >= exp && b.0 <= exp + exp / 4 + 1, "attempt {k}: {b}");
            // Deterministic: same (seed, attempt) → same jitter.
            assert_eq!(b, p.backoff(k));
        }
    }

    #[test]
    fn reliable_send_recovers_from_drops() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(FaultPlan::seeded(5).bernoulli(crate::netsim::FAULT_NET_DROP, 0.6));
        let tr = Transport::new(TransportKind::Udp);
        let mut recovered = 0u32;
        let mut t = Ns::ZERO;
        for _ in 0..32 {
            if let Ok(d) = tr.send_reliable(&mut net, a, b, t, 64, &RetryPolicy::DEFAULT) {
                if d.attempts > 1 {
                    recovered += 1;
                }
                t = d.done;
            } else {
                t += Ns(1_000_000);
            }
        }
        assert!(recovered > 0, "60% loss must force some retries");
    }

    #[test]
    fn reliable_send_gives_up_under_total_loss() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(FaultPlan::seeded(5).bernoulli(crate::netsim::FAULT_NET_DROP, 1.0));
        let tr = Transport::new(TransportKind::Udp);
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::DEFAULT
        };
        match tr.send_reliable(&mut net, a, b, Ns::ZERO, 64, &policy) {
            Err(NetError::Exhausted { attempts }) => assert_eq!(attempts, 3),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn reliable_request_retries_the_whole_exchange() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        // Partition the server for a fixed window; the client's RPC must
        // survive by re-issuing until the window clears.
        net.set_fault_plan(FaultPlan::seeded(3).window(
            &crate::netsim::partition_site(b.node),
            Ns(0),
            Ns(150_000),
        ));
        let tr = Transport::new(TransportKind::Udp);
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::DEFAULT
        };
        let d = tr
            .request_reliable(&mut net, a, b, Ns::ZERO, 64, 64, Ns(1_000), &policy)
            .unwrap();
        assert!(d.attempts > 1, "must have retried through the partition");
        assert!(d.done > Ns(150_000), "cannot finish inside the window");
        // Determinism: replay is bit-identical.
        let (mut net2, a2, b2) = pair(EndpointKind::Hardware);
        net2.set_fault_plan(FaultPlan::seeded(3).window(
            &crate::netsim::partition_site(b2.node),
            Ns(0),
            Ns(150_000),
        ));
        let d2 = tr
            .request_reliable(&mut net2, a2, b2, Ns::ZERO, 64, 64, Ns(1_000), &policy)
            .unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn reliable_request_gives_up_when_the_partition_outlasts_the_budget() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(
            FaultPlan::seeded(3).from_instant(&crate::netsim::partition_site(b.node), Ns::ZERO),
        );
        let tr = Transport::new(TransportKind::Udp);
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::DEFAULT
        };
        match tr.request_reliable(&mut net, a, b, Ns::ZERO, 64, 64, Ns::ZERO, &policy) {
            Err(NetError::Exhausted { attempts }) => assert_eq!(attempts, 3),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn traced_reliable_request_counts_and_marks_queue_edge() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(
            FaultPlan::seeded(3).from_instant(&crate::netsim::partition_site(b.node), Ns::ZERO),
        );
        let tr = Transport::new(TransportKind::Udp);
        let mut rec = Recorder::new("t");
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::DEFAULT
        };
        let r = tr.request_reliable_traced(
            &mut net,
            a,
            b,
            Ns::ZERO,
            64,
            64,
            Ns::ZERO,
            &policy,
            &mut rec,
        );
        assert!(matches!(r, Err(NetError::Exhausted { attempts: 2 })));
        assert_eq!(rec.counter("net:retries"), 2);
        assert_eq!(rec.counter("net:gave_up"), 1);
        assert_eq!(rec.queue_edges().len(), 1);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn traced_reliable_send_counts_and_marks_queue_edge() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(FaultPlan::seeded(5).bernoulli(crate::netsim::FAULT_NET_DROP, 1.0));
        let tr = Transport::new(TransportKind::Udp);
        let mut rec = Recorder::new("t");
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::DEFAULT
        };
        let r = tr.send_reliable_traced(&mut net, a, b, Ns::ZERO, 64, &policy, &mut rec);
        assert!(matches!(r, Err(NetError::Exhausted { attempts: 2 })));
        assert_eq!(rec.counter("net:retries"), 2);
        assert_eq!(rec.counter("net:timeouts"), 2);
        assert_eq!(rec.counter("net:gave_up"), 1);
        assert_eq!(rec.queue_edges().len(), 1);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn traced_send_claims_links_and_labels_incast_waits() {
        // Two senders incast into one sink: the second send queues on the
        // sink's downlink and its span edge must carry that link's id.
        let mut net = Network::new();
        let sink = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let s1 = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let s2 = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let tr = Transport::new(TransportKind::Udp);
        let mut rec = Recorder::new("incast");
        rec.enable_util();
        let a = tr.send_traced(&mut net, s1, sink, Ns::ZERO, 1 << 20, &mut rec);
        let b = tr.send_traced(&mut net, s2, sink, Ns::ZERO, 1 << 20, &mut rec);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(b.done > a.done);
        for id in ["net:uplink:1", "net:uplink:2", "net:downlink:0"] {
            assert!(
                rec.util().resource(id).is_some(),
                "missing utilization for {id}"
            );
        }
        // Both megabyte bursts serialize on the shared downlink: its busy
        // time is twice an uplink's.
        let down = rec.util().resource("net:downlink:0").unwrap().busy_ns();
        let up = rec.util().resource("net:uplink:1").unwrap().busy_ns();
        assert_eq!(down, Ns(up.0 * 2));
        assert_eq!(rec.edge_resources().len(), 1);
        assert_eq!(rec.edge_resources()[0].1, "net:downlink:0");
        // Timing parity with the untraced path.
        let mut plain = Network::new();
        let p_sink = Endpoint::new(plain.add_node(), EndpointKind::Hardware);
        let p1 = Endpoint::new(plain.add_node(), EndpointKind::Hardware);
        let p2 = Endpoint::new(plain.add_node(), EndpointKind::Hardware);
        assert_eq!(
            tr.send(&mut plain, p1, p_sink, Ns::ZERO, 1 << 20).unwrap(),
            a
        );
        assert_eq!(
            tr.send(&mut plain, p2, p_sink, Ns::ZERO, 1 << 20).unwrap(),
            b
        );
    }

    #[test]
    fn traced_fault_arms_leave_instants() {
        use hyperion_sim::fault::FaultPlan;
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        net.set_fault_plan(FaultPlan::seeded(5).bernoulli(crate::netsim::FAULT_NET_DROP, 1.0));
        let tr = Transport::new(TransportKind::Udp);
        let mut rec = Recorder::new("instants");
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::DEFAULT
        };
        let _ = tr.send_reliable_traced(&mut net, a, b, Ns::ZERO, 64, &policy, &mut rec);
        assert_eq!(rec.instants().len(), 2);
        assert!(rec.instants().iter().all(|(n, _)| n == "fault:net:drop"));
    }

    #[test]
    fn hardware_endpoints_beat_kernel_endpoints() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let hw = Transport::new(TransportKind::Udp)
            .request(&mut net, a, b, Ns::ZERO, 64, 64, Ns::ZERO)
            .unwrap();
        let (mut net2, a2, b2) = pair(EndpointKind::Kernel);
        let sw = Transport::new(TransportKind::Udp)
            .request(&mut net2, a2, b2, Ns::ZERO, 64, 64, Ns::ZERO)
            .unwrap();
        assert!(
            sw.done > hw.done + Ns(8_000),
            "hw {} sw {}",
            hw.done,
            sw.done
        );
    }
}
