//! Application-defined transports: UDP, TCP, RDMA, Homa.
//!
//! Paper §2: "The end-to-end hardware path can be specialized with ... an
//! application-defined network transport (TCP, UDP, RDMA, HOMA)". The four
//! models share the same wire (the [`Network`]) but differ in endpoint
//! costs, reliability machinery, and multi-round behaviour — the properties
//! that move the pointer-chasing and middleware experiments.

use hyperion_sim::time::Ns;
use hyperion_telemetry::{Component, Recorder};

use crate::frame::packets_for_message;
use crate::netsim::{NetError, Network, NodeId};
use crate::params;

/// Who processes messages at a node: the paper's contrast between
/// CPU-free hardware pipelines and host software stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// An in-fabric pipeline (Hyperion): parse/steer in hardware.
    Hardware,
    /// A kernel socket stack (syscalls, softirq, copies).
    Kernel,
    /// A kernel-bypass userspace stack (DPDK-class).
    Bypass,
}

impl EndpointKind {
    /// Fixed per-message processing cost.
    pub fn per_message(self) -> Ns {
        match self {
            EndpointKind::Hardware => params::HW_ENDPOINT,
            EndpointKind::Kernel => params::KERNEL_ENDPOINT,
            EndpointKind::Bypass => params::BYPASS_ENDPOINT,
        }
    }

    /// Additional per-packet processing cost (beyond the first packet).
    pub fn per_packet(self) -> Ns {
        match self {
            EndpointKind::Hardware => Ns(10),
            EndpointKind::Kernel => Ns(500),
            EndpointKind::Bypass => Ns(100),
        }
    }

    fn processing(self, bytes: u64) -> Ns {
        let extra = packets_for_message(bytes).saturating_sub(1);
        self.per_message() + self.per_packet() * extra
    }
}

/// A network endpoint: a node plus its processing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The node on the rack network.
    pub node: NodeId,
    /// How this node processes messages.
    pub kind: EndpointKind,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(node: NodeId, kind: EndpointKind) -> Endpoint {
        Endpoint { node, kind }
    }
}

/// The transport protocol in use on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Unreliable datagrams.
    Udp,
    /// Reliable byte stream with slow-start window growth.
    Tcp,
    /// One-sided remote memory verbs; the remote CPU is bypassed.
    Rdma,
    /// Receiver-driven (grant-based) datacenter transport.
    Homa,
}

impl TransportKind {
    /// All transports, in the order the paper lists them (§2).
    pub const ALL: [TransportKind; 4] = [
        TransportKind::Tcp,
        TransportKind::Udp,
        TransportKind::Homa,
        TransportKind::Rdma,
    ];

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp",
            TransportKind::Tcp => "tcp",
            TransportKind::Rdma => "rdma",
            TransportKind::Homa => "homa",
        }
    }

    /// Telemetry span label for a one-way send over this transport.
    pub fn send_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:send",
            TransportKind::Tcp => "tcp:send",
            TransportKind::Rdma => "rdma:send",
            TransportKind::Homa => "homa:send",
        }
    }

    /// Telemetry span label for a request/response exchange.
    pub fn request_label(self) -> &'static str {
        match self {
            TransportKind::Udp => "udp:request",
            TransportKind::Tcp => "tcp:request",
            TransportKind::Rdma => "rdma:request",
            TransportKind::Homa => "homa:request",
        }
    }
}

/// Outcome of a one-way message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Instant the message is fully processed at the receiver.
    pub done: Ns,
    /// Network round trips consumed (1 one-way traversal = 0 extra RTTs;
    /// window/grant rounds add whole RTTs).
    pub wire_rounds: u64,
}

/// A transport instance (stateless; connection state is abstracted into
/// the per-message cost model).
#[derive(Debug, Clone, Copy)]
pub struct Transport {
    kind: TransportKind,
}

impl Transport {
    /// Creates a transport of the given kind.
    pub fn new(kind: TransportKind) -> Transport {
        Transport { kind }
    }

    /// The protocol in use.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Extra full RTTs a message of `bytes` needs beyond its first
    /// traversal (TCP slow-start rounds, Homa grant round).
    fn extra_rounds(&self, bytes: u64) -> u64 {
        match self.kind {
            TransportKind::Udp | TransportKind::Rdma => 0,
            TransportKind::Tcp => {
                // Slow start from the initial window, doubling per RTT.
                let mut window = params::TCP_INIT_CWND * params::MTU;
                let mut rounds = 0;
                let mut sent = window.min(bytes);
                while sent < bytes {
                    window *= 2;
                    sent = (sent + window).min(bytes);
                    rounds += 1;
                }
                rounds
            }
            TransportKind::Homa => {
                // Unscheduled bytes go immediately; anything longer waits
                // one grant round, after which grants pipeline with data.
                if bytes > params::HOMA_UNSCHEDULED {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Endpoint cost at the receiver; RDMA one-sided verbs bypass the
    /// remote processor entirely and pay only the NIC.
    fn rx_cost(&self, ep: EndpointKind, bytes: u64) -> Ns {
        match self.kind {
            TransportKind::Rdma => params::RDMA_NIC,
            _ => ep.processing(bytes),
        }
    }

    fn tx_cost(&self, ep: EndpointKind, bytes: u64) -> Ns {
        match self.kind {
            TransportKind::Rdma => params::RDMA_NIC,
            _ => ep.processing(bytes),
        }
    }

    /// Sends one message and returns its delivery outcome.
    pub fn send(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
    ) -> Result<Delivery, NetError> {
        let start = now + self.tx_cost(from.kind, bytes);
        let rounds = self.extra_rounds(bytes);
        // Each extra round costs one base RTT of control traffic before
        // the tail of the data lands.
        let round_penalty = net.base_latency(64) * rounds;
        let arrival = net.deliver(from.node, to.node, start, bytes)?;
        let done = arrival + round_penalty + self.rx_cost(to.kind, bytes);
        Ok(Delivery {
            done,
            wire_rounds: rounds,
        })
    }

    /// A full request/response exchange: client → server (request),
    /// `server_work` at the server, server → client (response).
    ///
    /// Returns the completion instant at the client and the total number
    /// of one-way traversals consumed (for RTT accounting in E6).
    ///
    /// For RDMA this models a one-sided READ: the request is a verb header
    /// and the server's *CPU* contributes no work (`server_work` is still
    /// charged — it stands for device-side work like a flash read — but no
    /// kernel processing is added).
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
    ) -> Result<Delivery, NetError> {
        let req = self.send(net, client, server, now, req_bytes)?;
        let served = req.done + server_work;
        let resp = self.send(net, server, client, served, resp_bytes)?;
        Ok(Delivery {
            done: resp.done,
            wire_rounds: 1 + req.wire_rounds + resp.wire_rounds,
        })
    }

    /// [`Transport::send`] with a telemetry span covering the delivery
    /// (endpoint processing + wire + extra rounds). When the protocol
    /// burns control round trips before the tail of the data can land
    /// (TCP slow-start windows, Homa's grant round), the span gets a
    /// queueing edge of that length: the head of the delivery was spent
    /// waiting on the protocol, not moving payload bytes.
    pub fn send_traced(
        &self,
        net: &mut Network,
        from: Endpoint,
        to: Endpoint,
        now: Ns,
        bytes: u64,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let span = rec.open(Component::Net, self.kind.send_label(), now);
        let rounds = self.extra_rounds(bytes);
        if rounds > 0 {
            rec.queue_edge(span, now + net.base_latency(64) * rounds);
        }
        match self.send(net, from, to, now, bytes) {
            Ok(d) => {
                rec.close(span, d.done);
                Ok(d)
            }
            Err(e) => {
                rec.close(span, now);
                Err(e)
            }
        }
    }

    /// [`Transport::request`] with per-leg telemetry: a `*:request` span
    /// covering the whole exchange, nested `*:send` spans for each leg,
    /// and the server residency recorded as a [`Component::Service`] hop.
    #[allow(clippy::too_many_arguments)]
    pub fn request_traced(
        &self,
        net: &mut Network,
        client: Endpoint,
        server: Endpoint,
        now: Ns,
        req_bytes: u64,
        resp_bytes: u64,
        server_work: Ns,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let span = rec.open(Component::Net, self.kind.request_label(), now);
        let result = (|| {
            let req = self.send_traced(net, client, server, now, req_bytes, rec)?;
            let served = req.done + server_work;
            if server_work > Ns::ZERO {
                rec.record_hop(Component::Service, "server:work", req.done, served);
            }
            let resp = self.send_traced(net, server, client, served, resp_bytes, rec)?;
            Ok(Delivery {
                done: resp.done,
                wire_rounds: 1 + req.wire_rounds + resp.wire_rounds,
            })
        })();
        match &result {
            Ok(d) => rec.close(span, d.done),
            Err(_) => rec.close(span, now),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(kind: EndpointKind) -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new();
        let a = Endpoint::new(net.add_node(), kind);
        let b = Endpoint::new(net.add_node(), kind);
        (net, a, b)
    }

    #[test]
    fn udp_small_message_is_fast() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let d = Transport::new(TransportKind::Udp)
            .send(&mut net, a, b, Ns::ZERO, 64)
            .unwrap();
        assert!(d.done < Ns(3_000), "udp small message: {}", d.done);
        assert_eq!(d.wire_rounds, 0);
    }

    #[test]
    fn tcp_pays_slow_start_on_large_messages() {
        let (mut net, a, b) = pair(EndpointKind::Kernel);
        let tcp = Transport::new(TransportKind::Tcp);
        let small = tcp.send(&mut net, a, b, Ns::ZERO, 1_000).unwrap();
        assert_eq!(small.wire_rounds, 0);
        let large = tcp.send(&mut net, a, b, Ns::ZERO, 1_000_000).unwrap();
        assert!(large.wire_rounds >= 3, "rounds: {}", large.wire_rounds);
    }

    #[test]
    fn rdma_bypasses_kernel_endpoints() {
        let (mut net, a, b) = pair(EndpointKind::Kernel);
        let udp = Transport::new(TransportKind::Udp)
            .send(&mut net, a, b, Ns::ZERO, 4096)
            .unwrap();
        let (mut net2, a2, b2) = pair(EndpointKind::Kernel);
        let rdma = Transport::new(TransportKind::Rdma)
            .send(&mut net2, a2, b2, Ns::ZERO, 4096)
            .unwrap();
        assert!(
            rdma.done + Ns(4_000) < udp.done,
            "rdma {} vs udp {}",
            rdma.done,
            udp.done
        );
    }

    #[test]
    fn homa_is_udp_like_until_unscheduled_limit() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let homa = Transport::new(TransportKind::Homa);
        let short = homa.send(&mut net, a, b, Ns::ZERO, 32 * 1024).unwrap();
        assert_eq!(short.wire_rounds, 0);
        let long = homa.send(&mut net, a, b, Ns::ZERO, 256 * 1024).unwrap();
        assert_eq!(long.wire_rounds, 1);
    }

    #[test]
    fn request_counts_one_rtt_minimum() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let d = Transport::new(TransportKind::Udp)
            .request(&mut net, a, b, Ns::ZERO, 64, 4096, Ns(1_000))
            .unwrap();
        assert_eq!(d.wire_rounds, 1);
        assert!(d.done > Ns(1_000));
    }

    #[test]
    fn hardware_endpoints_beat_kernel_endpoints() {
        let (mut net, a, b) = pair(EndpointKind::Hardware);
        let hw = Transport::new(TransportKind::Udp)
            .request(&mut net, a, b, Ns::ZERO, 64, 64, Ns::ZERO)
            .unwrap();
        let (mut net2, a2, b2) = pair(EndpointKind::Kernel);
        let sw = Transport::new(TransportKind::Udp)
            .request(&mut net2, a2, b2, Ns::ZERO, 64, 64, Ns::ZERO)
            .unwrap();
        assert!(
            sw.done > hw.done + Ns(8_000),
            "hw {} sw {}",
            hw.done,
            sw.done
        );
    }
}
