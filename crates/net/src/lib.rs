//! # hyperion-net — the 100 GbE network substrate
//!
//! Models the rack network the Hyperion DPU attaches to (paper §2,
//! Figure 2: 2x100 Gbps QSFP ports feeding the AXIS datapath):
//!
//! * [`netsim`] — nodes, full-duplex links, and a cut-through switch with
//!   real FIFO queueing (incast contends at receiver downlinks);
//! * [`transport`] — the paper's four application-defined transports
//!   (TCP, UDP, RDMA, Homa) with distinct endpoint and round-trip
//!   profiles, plus the hardware/kernel/bypass endpoint cost models;
//! * [`rpc`] — the Willow-style specializable RPC layer used by every
//!   Hyperion service (§2.4);
//! * [`frame`] — packets, 5-tuples, and packetization math for the
//!   middleware data plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod netsim;
pub mod params;
pub mod rpc;
pub mod transport;

pub use frame::{packets_for_message, wire_bytes_for_message, FlowKey, Packet};
pub use netsim::{
    partition_site, NetError, Network, NodeId, FAULT_NET_CORRUPT, FAULT_NET_DROP, FAULT_NET_FLAP,
    FAULT_NODE_PARTITION,
};
pub use rpc::{MethodId, RpcChannel, RPC_FRAMING};
pub use transport::{
    Delivery, Endpoint, EndpointKind, ReliableDelivery, RetryPolicy, Transport, TransportKind,
};
