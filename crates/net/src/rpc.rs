//! A Willow-style specializable RPC layer.
//!
//! Paper §2.4: "we take inspiration from the flexible RPC interface
//! pioneered by Willow. The RPC interface can be specialized end-to-end
//! with network, storage, and application-level protocols." An
//! [`RpcChannel`] binds a client endpoint, a server endpoint, and a
//! transport; services above it (KV, shared log, pointer chasing, NVMe-oF)
//! define method ids and payload sizes, and the channel accounts wire and
//! endpoint time.

use hyperion_sim::stats::Counters;
use hyperion_sim::time::Ns;
use hyperion_telemetry::Recorder;

use crate::netsim::{NetError, Network};
use crate::transport::{Delivery, Endpoint, Transport};

/// A method selector on a specialized RPC service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u16);

/// Fixed RPC framing overhead per message (method id, sequence numbers,
/// checksums).
pub const RPC_FRAMING: u64 = 24;

/// A client↔server RPC binding over a chosen transport.
#[derive(Debug)]
pub struct RpcChannel {
    client: Endpoint,
    server: Endpoint,
    transport: Transport,
    /// `calls` and `rtts` counters for experiment reporting.
    pub counters: Counters,
}

impl RpcChannel {
    /// Binds a channel.
    pub fn new(client: Endpoint, server: Endpoint, transport: Transport) -> RpcChannel {
        RpcChannel {
            client,
            server,
            transport,
            counters: Counters::new(),
        }
    }

    /// The client endpoint.
    pub fn client(&self) -> Endpoint {
        self.client
    }

    /// The server endpoint.
    pub fn server(&self) -> Endpoint {
        self.server
    }

    /// The bound transport.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Issues a unary call: request payload up, `server_work` at the
    /// server, response payload down.
    pub fn call(
        &mut self,
        net: &mut Network,
        _method: MethodId,
        now: Ns,
        req_payload: u64,
        resp_payload: u64,
        server_work: Ns,
    ) -> Result<Delivery, NetError> {
        let d = self.transport.request(
            net,
            self.client,
            self.server,
            now,
            req_payload + RPC_FRAMING,
            resp_payload + RPC_FRAMING,
            server_work,
        )?;
        self.counters.bump("calls");
        self.counters.add("rtts", d.wire_rounds);
        Ok(d)
    }

    /// Issues `n` dependent calls back-to-back (each starts when the
    /// previous completes) — the client-driven pointer-chasing pattern of
    /// §2.4. Returns the final completion.
    #[allow(clippy::too_many_arguments)]
    pub fn call_chain(
        &mut self,
        net: &mut Network,
        method: MethodId,
        mut now: Ns,
        n: u64,
        req_payload: u64,
        resp_payload: u64,
        server_work: Ns,
    ) -> Result<Delivery, NetError> {
        let mut rounds = 0;
        for _ in 0..n {
            let d = self.call(net, method, now, req_payload, resp_payload, server_work)?;
            now = d.done;
            rounds += d.wire_rounds;
        }
        Ok(Delivery {
            done: now,
            wire_rounds: rounds,
        })
    }

    /// [`RpcChannel::call`] with per-leg telemetry (see
    /// [`Transport::request_traced`]).
    #[allow(clippy::too_many_arguments)]
    pub fn call_traced(
        &mut self,
        net: &mut Network,
        _method: MethodId,
        now: Ns,
        req_payload: u64,
        resp_payload: u64,
        server_work: Ns,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let d = self.transport.request_traced(
            net,
            self.client,
            self.server,
            now,
            req_payload + RPC_FRAMING,
            resp_payload + RPC_FRAMING,
            server_work,
            rec,
        )?;
        self.counters.bump("calls");
        self.counters.add("rtts", d.wire_rounds);
        Ok(d)
    }

    /// [`RpcChannel::call_chain`] with per-leg telemetry and a per-call
    /// latency sample under `op` (the E6 pointer-chase breakdown).
    #[allow(clippy::too_many_arguments)]
    pub fn call_chain_traced(
        &mut self,
        net: &mut Network,
        method: MethodId,
        mut now: Ns,
        n: u64,
        req_payload: u64,
        resp_payload: u64,
        server_work: Ns,
        op: &str,
        rec: &mut Recorder,
    ) -> Result<Delivery, NetError> {
        let mut rounds = 0;
        for _ in 0..n {
            let d = self.call_traced(
                net,
                method,
                now,
                req_payload,
                resp_payload,
                server_work,
                rec,
            )?;
            rec.record_op(op, d.done.saturating_sub(now));
            now = d.done;
            rounds += d.wire_rounds;
        }
        Ok(Delivery {
            done: now,
            wire_rounds: rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{EndpointKind, TransportKind};

    fn channel() -> (Network, RpcChannel) {
        let mut net = Network::new();
        let c = Endpoint::new(net.add_node(), EndpointKind::Kernel);
        let s = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let ch = RpcChannel::new(c, s, Transport::new(TransportKind::Udp));
        (net, ch)
    }

    #[test]
    fn call_accounts_rtts() {
        let (mut net, mut ch) = channel();
        ch.call(&mut net, MethodId(1), Ns::ZERO, 64, 512, Ns(100))
            .unwrap();
        assert_eq!(ch.counters.get("calls"), 1);
        assert_eq!(ch.counters.get("rtts"), 1);
    }

    #[test]
    fn chains_scale_linearly_in_rtts() {
        let (mut net, mut ch) = channel();
        let one = ch
            .call(&mut net, MethodId(1), Ns::ZERO, 64, 64, Ns::ZERO)
            .unwrap();
        let (mut net2, mut ch2) = channel();
        let four = ch2
            .call_chain(&mut net2, MethodId(1), Ns::ZERO, 4, 64, 64, Ns::ZERO)
            .unwrap();
        assert_eq!(four.wire_rounds, 4 * one.wire_rounds);
        // Latency of 4 dependent calls is ~4x one call.
        let ratio = four.done.0 as f64 / one.done.0 as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }
}
