//! Calibration constants for the network substrate.
//!
//! The Hyperion prototype exposes 2x100 Gbps Ethernet QSFP28 ports (paper
//! §2, Figure 2) on an in-rack network. Constants follow common data-center
//! measurements; as with all model parameters, experiments report ratios
//! and shapes, not these values.

use hyperion_sim::time::Ns;

/// Line rate of one QSFP28 port.
pub const LINK_100G_BPS: u64 = 100_000_000_000;

/// One-way propagation within a rack (fiber + PHY).
pub const RACK_PROPAGATION: Ns = Ns(500);

/// Cut-through switch traversal latency.
pub const SWITCH_LATENCY: Ns = Ns(300);

/// Standard Ethernet MTU payload.
pub const MTU: u64 = 1500;

/// Ethernet + IP + transport header overhead per packet (14 + 20 + 20
/// rounded, plus preamble/IFG accounted as bytes on the wire).
pub const HEADER_BYTES: u64 = 78;

/// Per-message endpoint cost of a hardware (FPGA) network pipeline:
/// parse/steer in a few pipeline stages.
pub const HW_ENDPOINT: Ns = Ns(150);

/// Per-message endpoint cost of a kernel socket stack (syscall, softirq,
/// skb handling, copy) — the CPU-centric path the paper wants off the
/// critical path (§1).
pub const KERNEL_ENDPOINT: Ns = Ns(3_000);

/// Per-message endpoint cost of a kernel-bypass (DPDK-class) stack.
pub const BYPASS_ENDPOINT: Ns = Ns(700);

/// RDMA NIC processing per verb (hardware offloaded).
pub const RDMA_NIC: Ns = Ns(250);

/// Initial congestion window for the TCP model (10 MSS, RFC 6928).
pub const TCP_INIT_CWND: u64 = 10;

/// Homa's unscheduled window: bytes a sender may blast before grants
/// (RTTbytes at 100 Gbps with ~5 us RTT ≈ 60 KiB; we use 64 KiB).
pub const HOMA_UNSCHEDULED: u64 = 64 * 1024;
