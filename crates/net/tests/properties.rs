//! Property tests for the network substrate: causality, monotonicity, and
//! determinism across all transports.

use hyperion_net::netsim::Network;
use hyperion_net::transport::{Endpoint, EndpointKind, Transport, TransportKind};
use hyperion_sim::time::Ns;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TransportKind> {
    prop_oneof![
        Just(TransportKind::Udp),
        Just(TransportKind::Tcp),
        Just(TransportKind::Rdma),
        Just(TransportKind::Homa),
    ]
}

fn ep_kind_strategy() -> impl Strategy<Value = EndpointKind> {
    prop_oneof![
        Just(EndpointKind::Hardware),
        Just(EndpointKind::Kernel),
        Just(EndpointKind::Bypass),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Causality: every delivery completes strictly after it was sent, for
    /// any transport, endpoint mix, and message size.
    #[test]
    fn deliveries_are_causal(
        kind in kind_strategy(),
        ek in ep_kind_strategy(),
        bytes in 0u64..4_000_000,
        start in 0u64..1_000_000_000,
    ) {
        let mut net = Network::new();
        let a = Endpoint::new(net.add_node(), ek);
        let b = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let d = Transport::new(kind).send(&mut net, a, b, Ns(start), bytes).unwrap();
        prop_assert!(d.done > Ns(start));
    }

    /// Uncontended latency is monotone in message size (same fresh network
    /// for each size, same transport).
    #[test]
    fn bigger_messages_are_never_faster(
        kind in kind_strategy(),
        base in 1u64..500_000,
        extra in 1u64..500_000,
    ) {
        let run = |bytes: u64| -> Ns {
            let mut net = Network::new();
            let a = Endpoint::new(net.add_node(), EndpointKind::Kernel);
            let b = Endpoint::new(net.add_node(), EndpointKind::Kernel);
            Transport::new(kind).send(&mut net, a, b, Ns::ZERO, bytes).unwrap().done
        };
        prop_assert!(run(base + extra) >= run(base));
    }

    /// The transport layer is deterministic: identical scenarios produce
    /// identical timelines.
    #[test]
    fn transports_are_deterministic(
        kind in kind_strategy(),
        sizes in proptest::collection::vec(1u64..100_000, 1..20),
    ) {
        let run = || -> Vec<u64> {
            let mut net = Network::new();
            let a = Endpoint::new(net.add_node(), EndpointKind::Bypass);
            let b = Endpoint::new(net.add_node(), EndpointKind::Hardware);
            let tr = Transport::new(kind);
            let mut t = Ns::ZERO;
            sizes
                .iter()
                .map(|&s| {
                    let d = tr.send(&mut net, a, b, t, s).unwrap();
                    t = d.done;
                    d.done.0
                })
                .collect()
        };
        prop_assert_eq!(run(), run());
    }

    /// Request/response counts at least one RTT and finishes after the
    /// server work.
    #[test]
    fn requests_include_server_work(
        kind in kind_strategy(),
        work in 0u64..10_000_000,
    ) {
        let mut net = Network::new();
        let c = Endpoint::new(net.add_node(), EndpointKind::Kernel);
        let s = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let d = Transport::new(kind)
            .request(&mut net, c, s, Ns::ZERO, 64, 64, Ns(work))
            .unwrap();
        prop_assert!(d.wire_rounds >= 1);
        prop_assert!(d.done >= Ns(work));
    }

    /// FIFO links: sequential messages on the same pair complete in order.
    #[test]
    fn same_pair_messages_complete_in_order(
        sizes in proptest::collection::vec(1u64..200_000, 2..20),
    ) {
        let mut net = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let mut last = Ns::ZERO;
        for &s in &sizes {
            // All sent at t=0: the uplink serializes them FIFO.
            let arrival = net.deliver(a, b, Ns::ZERO, s).unwrap();
            prop_assert!(arrival >= last);
            last = arrival;
        }
    }
}
