//! Offline drop-in subset of the [`bytes`] crate.
//!
//! The Hyperion workspace builds in environments with no network access
//! and no vendored registry, so the external `bytes` dependency is
//! replaced by this path crate. It implements exactly the API surface the
//! workspace uses — cheaply-cloneable immutable [`Bytes`] (backed by an
//! `Arc<[u8]>`), an appendable [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! accessor traits — with the same observable semantics.
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (the shim copies once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A unique, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

/// Read access to a cursor over a byte buffer.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian u16 and advances.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian u32 and advances.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian u64 and advances.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to an appendable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], &[2, 3]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn bytesmut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16_le(0xBEEF);
        m.put_u8(7);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.as_ref(), &[0xEF, 0xBE, 7, b'x', b'y']);
    }

    #[test]
    fn buf_cursor_reads() {
        let mut b = Bytes::from(vec![0xEF, 0xBE, 9]);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 0);
    }
}
