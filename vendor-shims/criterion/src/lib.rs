//! Offline drop-in subset of the [`criterion`] crate.
//!
//! The workspace builds without network access, so the external
//! `criterion` dev-dependency is replaced by this path crate. It keeps the
//! API `benches/experiments.rs` uses — [`Criterion::bench_function`],
//! [`Bencher::iter`], `criterion_group!`/`criterion_main!` — and measures
//! with plain `std::time::Instant`: a warm-up pass, then `sample_size`
//! timed batches, reporting min/mean over batches. No statistical
//! analysis, plots, or baselines; good enough to spot order-of-magnitude
//! regressions in the hot paths the benches pin down.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    iters_per_sample: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            iters_per_sample: 50,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: a warm-up batch, then timed samples.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters_per_sample,
            elapsed: Duration::ZERO,
        };
        // Warm-up (also catches panics early with a small batch).
        b.iters = (self.iters_per_sample / 10).max(1);
        f(&mut b);

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            b.iters = self.iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            let per_iter = b.elapsed / self.iters_per_sample as u32;
            best = best.min(per_iter);
            total += per_iter;
        }
        let mean = total / self.sample_size as u32;
        eprintln!(
            "bench {id}: mean {:>12} best {:>12} ({} samples x {} iters)",
            fmt_duration(mean),
            fmt_duration(best),
            self.sample_size,
            self.iters_per_sample,
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group (`name = ...; config = ...; targets = ...`
/// and plain `group_name, target...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(2);
        let mut count = 0u64;
        c.bench_function("shim/self-test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
