//! Offline drop-in subset of the [`proptest`] crate.
//!
//! The workspace builds without network access, so the external
//! `proptest` dependency is replaced by this path crate. It keeps the
//! subset of the API the workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer/float range
//! strategies, [`prelude::Just`], `prop_oneof!`, `collection::vec`, `any`,
//! and the `prop_assert*` macros — with a deliberately simpler engine:
//!
//! * case generation is driven by a fixed-seed SplitMix64 stream, so every
//!   run of a test explores the same deterministic case sequence;
//! * failing cases are reported via panic (the generated inputs are in the
//!   panic message) instead of being shrunk and persisted.
//!
//! Determinism is a feature here: the repo's own simulation contract is
//! "same seed → same timeline", and a reproducible test stream means CI
//! failures always replay locally.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator: the shim's notion of a proptest strategy.
pub trait Strategy {
    /// The type of values this strategy yields.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! wide_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start.wrapping_add(r as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u128;
                if span == u128::MAX {
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % (span + 1);
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}

wide_int_range_strategy!(u128, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`prelude::any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A weighted choice among type-erased same-valued strategies
/// (the target of `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    /// Builds a choice from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one weighted arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in new()")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Yields vectors whose elements come from `element` and whose length
    /// is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case; property bodies may `?` these.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Rejects the current case (treated the same as a failure here: the
    /// shim has no retry budget, and the workspace never rejects).
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Runs `f` for `config.cases` deterministic cases (used by the
/// [`proptest!`] expansion; not part of the public proptest API).
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut f: impl FnMut(&mut TestRng)) {
    // Fixed seed: the case stream only depends on the test name, so a
    // failure always reproduces.
    let mut seed = 0xC0FF_EE00_D15E_A5E5u64;
    for b in test_name.bytes() {
        seed = seed.rotate_left(7) ^ b as u64;
    }
    let mut rng = TestRng::new(seed);
    for _ in 0..config.cases {
        f(&mut rng);
    }
}

/// Asserts a condition inside a property; failure panics with the message
/// and fails the surrounding case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Chooses among strategies with equal (or `weight =>`) odds.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body for many generated
/// inputs. Mirrors the real macro's surface for the forms the workspace
/// uses (`#![proptest_config(...)]`, `arg in strategy` parameters).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("test case failed: {e}");
                    }
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let inc = (1u8..=255).generate(&mut rng);
            assert!(inc >= 1);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0u64..10).prop_map(|v| v * 2), Just(1000u64),];
        let mut rng = TestRng::new(7);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1000 || (v < 20 && v % 2 == 0));
            saw_just |= v == 1000;
        }
        assert!(saw_just);
    }

    #[test]
    fn vec_strategy_respects_length() {
        let s = crate::collection::vec(0u64..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("x", &ProptestConfig::with_cases(16), |rng| {
            a.push(rng.next_u64())
        });
        crate::run_cases("x", &ProptestConfig::with_cases(16), |rng| {
            b.push(rng.next_u64())
        });
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(x in 0u64..100, v in crate::collection::vec(0u64..10, 1..4)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
