//! F2 integration: the complete Figure-2 system, exercised across crate
//! boundaries — boot, control plane, hardware kernel, stream switch,
//! single-level store, and the durable path to flash, with the structural
//! guarantee that no stage involves a CPU.

use hyperion_repro::core::control::{ControlPlane, ControlRequest, ControlResponse};
use hyperion_repro::core::dpu::{DpuBuilder, DpuState};
use hyperion_repro::mem::seglevel::{AllocHint, SegmentId};
use hyperion_repro::sim::time::Ns;

const KEY: u64 = 0xC0FFEE;

#[test]
fn full_figure2_flow_with_zero_cpu_hops() {
    let mut dpu = DpuBuilder::new().auth_key(KEY).build();
    let mut cp = ControlPlane::new(KEY);
    assert_eq!(dpu.state(), DpuState::PoweredOff);

    // Boot standalone.
    let booted = dpu.boot(Ns::ZERO).expect("boot");
    assert_eq!(dpu.state(), DpuState::Ready);

    // Deploy a checksum kernel over the control port.
    let resp = cp
        .handle(
            &mut dpu,
            ControlRequest::Deploy {
                name: "csum".into(),
                source: "mov r2, 64\ncall checksum\nexit".into(),
                ctx_min_len: 64,
            },
            booted,
        )
        .expect("deploy");
    let ControlResponse::Deployed { slot, live_at } = resp else {
        panic!("expected Deployed");
    };

    // Ingress: QSFP0 -> accel row through the AXIS arbiter.
    let at_accel = dpu
        .fabric
        .switch
        .stream(dpu.ports.qsfp0, dpu.ports.accel, live_at, 4096)
        .expect("ingress stream");

    // Process in the hardware pipeline (functional result from the VM).
    let kernel = cp.kernel_mut(slot).expect("deployed");
    let mut payload = vec![0x11u8; 4096];
    let (result, processed) = kernel
        .pipeline
        .process(&mut kernel.vm, &mut payload, at_accel)
        .expect("process");
    assert!(result.ret <= 0xFFFF, "checksum is 16-bit");

    // Egress toward storage and persist as a durable segment.
    let at_nvme = dpu
        .fabric
        .switch
        .stream(dpu.ports.accel, dpu.ports.nvme, processed, 4096)
        .expect("egress stream");
    dpu.segments
        .create(SegmentId(1), 4096, AllocHint::Durable, at_nvme)
        .expect("create");
    let done = dpu
        .segments
        .write(SegmentId(1), 0, &payload, at_nvme)
        .expect("write");

    // Causality and the zero-CPU property.
    assert!(done > booted);
    assert_eq!(dpu.root_complex.counters.get("cpu_hops"), 0);
    assert_eq!(dpu.root_complex.counters.get("dram_bounces"), 0);

    // The data actually landed: read it back.
    let (back, _) = dpu
        .segments
        .read(SegmentId(1), 0, 4096, done)
        .expect("read");
    assert_eq!(back.as_ref(), payload.as_slice());
}

#[test]
fn reboot_cycle_preserves_durable_state_and_slots_reset() {
    let mut dpu = DpuBuilder::new().auth_key(KEY).build();
    let t = dpu.boot(Ns::ZERO).expect("boot");
    dpu.segments
        .create(SegmentId(9), 8192, AllocHint::Durable, t)
        .expect("create");
    dpu.segments
        .write(SegmentId(9), 100, b"across-reboots", t)
        .expect("write");
    let t = dpu.segments.persist_table(t).expect("persist");

    // Crash/reboot.
    let t = dpu.boot(t).expect("reboot");
    let (data, _) = dpu.segments.read(SegmentId(9), 100, 14, t).expect("read");
    assert_eq!(data.as_ref(), b"across-reboots");
    assert_eq!(dpu.counters.get("boots"), 2);
}
