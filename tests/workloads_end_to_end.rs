//! Cross-crate workload integration: the §2.4 applications running
//! together on one DPU, plus remote access through the network stack.

use hyperion_repro::apps::fail2ban;
use hyperion_repro::apps::pointer_chase::{client_driven_lookup, offloaded_lookup, populate_tree};
use hyperion_repro::apps::trafficgen::TrafficGen;
use hyperion_repro::core::control::ControlPlane;
use hyperion_repro::core::dpu::DpuBuilder;
use hyperion_repro::core::services::{ServiceRequest, ServiceResponse, TableRegistry};
use hyperion_repro::net::rpc::RpcChannel;
use hyperion_repro::net::transport::{Endpoint, EndpointKind, Transport, TransportKind};
use hyperion_repro::net::Network;
use hyperion_repro::sim::time::Ns;

const KEY: u64 = 0xC0FFEE;

#[test]
fn middleware_and_storage_services_share_one_dpu() {
    let mut dpu = DpuBuilder::new().auth_key(KEY).build();
    let t0 = dpu.boot(Ns::ZERO).expect("boot");
    let mut cp = ControlPlane::new(KEY);

    // 1. fail2ban kernel in slot 0, processing attack traffic.
    let (slot, live) = fail2ban::deploy(&mut dpu, &mut cp, t0).expect("deploy");
    let mut gen = TrafficGen::new(5, 200, 0.5, 32);
    let report = fail2ban::run_on_dpu(&mut dpu, &mut cp, slot, &mut gen, 3_000, live);
    assert!(report.bans > 0);
    assert_eq!(report.bans, report.logged);

    // 2. Meanwhile, the same DPU serves KV and tree lookups.
    let reg = TableRegistry::default();
    let mut t = report.end;
    for k in 0..200u64 {
        let (_, t2) = dpu
            .serve(
                &reg,
                ServiceRequest::TreeInsert {
                    key: k,
                    value: k + 1,
                },
                t,
            )
            .expect("insert");
        t = t2;
    }
    let (resp, t) = dpu
        .serve(&reg, ServiceRequest::TreeLookup { key: 150 }, t)
        .expect("lookup");
    let ServiceResponse::Value(v) = resp else {
        panic!("expected value");
    };
    assert_eq!(v, Some(151));

    // 3. The ban log and the tree coexist: read a ban entry back.
    let (resp, _) = dpu
        .serve(&reg, ServiceRequest::LogRead { position: 0 }, t)
        .expect("log read");
    assert!(matches!(resp, ServiceResponse::Entry(_)));
}

#[test]
fn remote_clients_see_consistent_tree_state_over_every_transport() {
    let mut dpu = DpuBuilder::new().auth_key(KEY).build();
    let t0 = dpu.boot(Ns::ZERO).expect("boot");
    let t0 = populate_tree(&mut dpu, 2_000, t0);

    for kind in TransportKind::ALL {
        let mut net = Network::new();
        let client = Endpoint::new(net.add_node(), EndpointKind::Bypass);
        let server = Endpoint::new(net.add_node(), EndpointKind::Hardware);
        let mut ch = RpcChannel::new(client, server, Transport::new(kind));
        let off = offloaded_lookup(&mut dpu, &mut ch, &mut net, 777, t0);
        let cli = client_driven_lookup(&mut dpu, &mut ch, &mut net, 777, off.done);
        assert_eq!(off.value, Some(777 * 7), "{}", kind.name());
        assert_eq!(cli.value, off.value, "{}", kind.name());
        assert!(cli.rtts > off.rtts, "{}", kind.name());
    }
}

#[test]
fn tenancy_and_services_do_not_interfere() {
    // Deploy co-tenants while storage services keep running; the resident
    // pipeline's items and the LSM both make progress.
    let mut dpu = DpuBuilder::new().auth_key(KEY).build();
    let t0 = dpu.boot(Ns::ZERO).expect("boot");
    let mut cp = ControlPlane::new(KEY);
    let report = hyperion_repro::core::tenancy::run_with_co_tenants(
        &mut dpu,
        &mut cp,
        500,
        Ns(2_000),
        2,
        t0,
    )
    .expect("tenancy");
    assert_eq!(report.reconfigurations, 2);
    assert_eq!(report.resident_latency.count(), 500);

    let reg = TableRegistry::default();
    let (_, t) = dpu
        .serve(&reg, ServiceRequest::KvPut { key: 1, value: 2 }, report.end)
        .expect("put");
    let (resp, _) = dpu
        .serve(&reg, ServiceRequest::KvGet { key: 1 }, t)
        .expect("get");
    let ServiceResponse::Value(v) = resp else {
        panic!("expected value");
    };
    assert_eq!(v, Some(2));
}
