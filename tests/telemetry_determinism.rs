//! Determinism property for the telemetry subsystem: a recorder's dump is
//! a pure function of the simulated run. Two E6 pointer-chase runs with
//! the same configuration must produce byte-identical JSON dumps — no
//! wall-clock, no randomness, no map iteration order anywhere on the
//! recording path.

use hyperion_repro::apps::pointer_chase::{
    client_driven_lookup_traced, offloaded_lookup_traced, populate_tree,
};
use hyperion_repro::core::dpu::DpuBuilder;
use hyperion_repro::net::rpc::RpcChannel;
use hyperion_repro::net::transport::{Endpoint, EndpointKind, Transport, TransportKind};
use hyperion_repro::net::Network;
use hyperion_repro::sim::time::Ns;
use hyperion_repro::telemetry::json::to_json;
use hyperion_repro::telemetry::Recorder;
use proptest::prelude::*;

/// One traced pointer-chase run (the E6 shape), returning its dump.
fn traced_chase(keys: u64, lookups: u64, kind: TransportKind) -> String {
    let mut dpu = DpuBuilder::new().auth_key(1).build();
    let t0 = dpu.boot(Ns::ZERO).expect("boot");
    let t0 = populate_tree(&mut dpu, keys, t0);
    let mut net = Network::new();
    let client = Endpoint::new(net.add_node(), EndpointKind::Kernel);
    let server = Endpoint::new(net.add_node(), EndpointKind::Hardware);
    let mut ch = RpcChannel::new(client, server, Transport::new(kind));
    let mut rec = Recorder::new("e6-determinism");
    let mut t = t0;
    for i in 0..lookups {
        let key = (i * keys / lookups).min(keys - 1);
        let cli = client_driven_lookup_traced(&mut dpu, &mut ch, &mut net, key, t, &mut rec);
        t = cli.done;
        let off = offloaded_lookup_traced(&mut dpu, &mut ch, &mut net, key, t, &mut rec);
        t = off.done;
    }
    assert_eq!(rec.open_spans(), 0, "instrumentation must close every span");
    to_json(&rec)
}

#[test]
fn same_seed_e6_runs_dump_identical_telemetry() {
    let a = traced_chase(2_000, 16, TransportKind::Udp);
    let b = traced_chase(2_000, 16, TransportKind::Udp);
    assert_eq!(a, b, "same-seed runs must dump byte-identical telemetry");
    // And the dump actually carries the breakdown sections.
    for section in ["\"hops\"", "\"ops\"", "\"energy_pj\"", "\"spans\""] {
        assert!(a.contains(section), "dump missing {section}");
    }
}

#[test]
fn merged_recorders_dump_deterministically() {
    let merged = |keys| {
        let mut base = Recorder::new("merged");
        for k in [keys, keys * 2] {
            let mut dpu = DpuBuilder::new().auth_key(1).build();
            let t0 = dpu.boot(Ns::ZERO).expect("boot");
            let t0 = populate_tree(&mut dpu, k, t0);
            let mut net = Network::new();
            let client = Endpoint::new(net.add_node(), EndpointKind::Kernel);
            let server = Endpoint::new(net.add_node(), EndpointKind::Hardware);
            let mut ch = RpcChannel::new(client, server, Transport::new(TransportKind::Udp));
            let mut rec = Recorder::new("part");
            offloaded_lookup_traced(&mut dpu, &mut ch, &mut net, k / 2, t0, &mut rec);
            base.merge(&rec);
        }
        to_json(&base)
    };
    assert_eq!(merged(500), merged(500));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn dump_determinism_holds_across_configs(keys in 100u64..400, lookups in 1u64..6) {
        let a = traced_chase(keys, lookups, TransportKind::Udp);
        let b = traced_chase(keys, lookups, TransportKind::Udp);
        prop_assert_eq!(a, b);
    }
}
