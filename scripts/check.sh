#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#   ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> fault-matrix smoke (e13: injected faults must recover deterministically)"
# E13 is explicit-only and never in the gated snapshot below; run it twice
# and require byte-identical output so fault injection stays deterministic.
FAULTS_A="$(mktemp)"
FAULTS_B="$(mktemp)"
trap 'rm -f "$FAULTS_A" "$FAULTS_B"' EXIT
cargo run --release -q -p hyperion-bench --bin report -- e13 > "$FAULTS_A"
cargo run --release -q -p hyperion-bench --bin report -- e13 > "$FAULTS_B"
diff -u "$FAULTS_A" "$FAULTS_B"
grep -q "gave up" "$FAULTS_A"

echo "==> availability smoke (e14: failover must replay byte-identically)"
# Same contract for the cluster-failover experiment: detection, epoch
# bumps, repair, and shedding are all on the virtual clock, so two runs
# must agree to the byte.
cargo run --release -q -p hyperion-bench --bin report -- e14 > "$FAULTS_A"
cargo run --release -q -p hyperion-bench --bin report -- e14 > "$FAULTS_B"
diff -u "$FAULTS_A" "$FAULTS_B"
grep -q "unavail" "$FAULTS_A"

echo "==> bottleneck smoke (e15: blame attribution must replay byte-identically)"
# The utilization plane and blame pass are pure functions of the virtual
# clock; two sweeps must agree to the byte, and the sweep table must
# actually attribute (a "top blamed" resource per load shape).
cargo run --release -q -p hyperion-bench --bin report -- --util e15 > "$FAULTS_A"
cargo run --release -q -p hyperion-bench --bin report -- --util e15 > "$FAULTS_B"
diff -u "$FAULTS_A" "$FAULTS_B"
grep -q "bottleneck attribution" "$FAULTS_A"
cargo run --release -q -p hyperion-bench --bin report -- e15 > "$FAULTS_A"
grep -q "top blamed" "$FAULTS_A"

echo "==> observability smoke (report --util / --profile render)"
# --util must be safe on a recorder that never enabled the plane, and
# --profile must rank blocks for both reference eBPF programs.
cargo run --release -q -p hyperion-bench --bin report -- --util e1 > "$FAULTS_A"
grep -q "resource utilization" "$FAULTS_A"
cargo run --release -q -p hyperion-bench --bin report -- --profile > "$FAULTS_A"
grep -q "profile: fail2ban" "$FAULTS_A"
grep -q "profile: pointer-chase" "$FAULTS_A"

echo "==> report --json -> BENCH_report.json + bench gate"
SNAPSHOT="$(mktemp)"
trap 'rm -f "$SNAPSHOT" "$FAULTS_A" "$FAULTS_B"' EXIT
cargo run --release -q -p hyperion-bench --bin report -- --json > "$SNAPSHOT"
./scripts/bench_gate.sh "$SNAPSHOT"

echo "All checks passed."
