#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
#
# Run from the repository root:
#   ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> report --json -> BENCH_report.json + bench gate"
SNAPSHOT="$(mktemp)"
trap 'rm -f "$SNAPSHOT"' EXIT
cargo run --release -q -p hyperion-bench --bin report -- --json > "$SNAPSHOT"
./scripts/bench_gate.sh "$SNAPSHOT"

echo "All checks passed."
