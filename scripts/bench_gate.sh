#!/usr/bin/env bash
# Performance-regression gate: compare a fresh `report --json` snapshot
# against the committed BENCH_report.json baseline.
#
# Run from the repository root:
#   ./scripts/bench_gate.sh [current.json] [--tolerance 0.15]
#
# With no snapshot argument the script generates one (release build: the
# simulator is deterministic, but debug timing of the *harness* is slow).
# Exits non-zero on any per-hop/per-op p99 regression beyond the
# tolerance, or when the committed baseline has gone stale. Regenerate
# the baseline after an intentional performance change with:
#   cargo run --release -p hyperion-bench --bin report -- --json > BENCH_report.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_report.json
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate.sh: no committed $BASELINE baseline" >&2
    exit 2
fi

CURRENT=""
ARGS=()
for a in "$@"; do
    case "$a" in
        --*) ARGS+=("$a") ;;
        *) if [[ -z "$CURRENT" && "${PREV:-}" != "--tolerance" ]]; then CURRENT="$a"; else ARGS+=("$a"); fi ;;
    esac
    PREV="$a"
done

if [[ -z "$CURRENT" ]]; then
    CURRENT="$(mktemp)"
    trap 'rm -f "$CURRENT"' EXIT
    echo "==> report --json (fresh snapshot)"
    cargo run --release -q -p hyperion-bench --bin report -- --json > "$CURRENT"
fi

echo "==> bench_gate $BASELINE"
cargo run --release -q -p hyperion-bench --bin bench_gate -- "$BASELINE" "$CURRENT" ${ARGS[@]+"${ARGS[@]}"}
