//! Pointer chasing over the network (paper §2.4): the latency-sensitive
//! workload that motivates pushing traversal logic into the DPU.
//!
//! A remote client looks up keys in a B+ tree stored on the DPU's flash,
//! two ways: walking the tree itself (one round trip per node) and asking
//! the DPU to walk it (one round trip total).
//!
//! Run with: `cargo run --example pointer_chasing`

use hyperion_repro::apps::pointer_chase::{client_driven_lookup, offloaded_lookup, populate_tree};
use hyperion_repro::core::dpu::DpuBuilder;
use hyperion_repro::net::rpc::RpcChannel;
use hyperion_repro::net::transport::{Endpoint, EndpointKind, Transport, TransportKind};
use hyperion_repro::net::Network;
use hyperion_repro::sim::time::Ns;

fn main() {
    for &keys in &[1_000u64, 50_000] {
        let mut dpu = DpuBuilder::new().auth_key(1).build();
        let t0 = dpu.boot(Ns::ZERO).expect("boot");
        let t0 = populate_tree(&mut dpu, keys, t0);
        let height = dpu.btree.as_ref().expect("tree").height();
        println!("\ntree of {keys} keys (height {height}):");

        // Time threads forward across transports: the flash timeline is
        // shared, so each measurement starts where the previous ended.
        let mut t0 = t0;
        for kind in [TransportKind::Udp, TransportKind::Rdma] {
            let mut net = Network::new();
            let client = Endpoint::new(net.add_node(), EndpointKind::Kernel);
            let server = Endpoint::new(net.add_node(), EndpointKind::Hardware);
            let mut ch = RpcChannel::new(client, server, Transport::new(kind));

            let key = keys / 2;
            let cli = client_driven_lookup(&mut dpu, &mut ch, &mut net, key, t0);
            let off = offloaded_lookup(&mut dpu, &mut ch, &mut net, key, cli.done);
            assert_eq!(cli.value, off.value);
            let cli_lat = cli.done - t0;
            let off_lat = off.done - cli.done;
            t0 = off.done;
            println!(
                "  {:>4}: client-driven {:>12} ({} RTTs)   offloaded {:>12} ({} RTT)   speedup {:.2}x",
                kind.name(),
                format!("{cli_lat}"),
                cli.rtts,
                format!("{off_lat}"),
                off.rtts,
                cli_lat.0 as f64 / off_lat.0 as f64,
            );
        }
    }
}
