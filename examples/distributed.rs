//! Distributed CPU-free deployments (paper §2.4 C1, §4 Q3): a cluster of
//! DPUs serving a partitioned KV store with client-driven routing, a
//! cluster-wide shared log, and remote block access through the NVMe-oF
//! target.
//!
//! Run with: `cargo run --example distributed`

use hyperion_repro::core::cluster::{ClusterLog, DpuCluster};
use hyperion_repro::core::nvmeof::{Initiator, NvmeOfTarget, ResponseCapsule};
use hyperion_repro::core::services::{ServiceRequest, ServiceResponse};
use hyperion_repro::net::transport::{Endpoint, EndpointKind, Transport, TransportKind};
use hyperion_repro::net::Network;
use hyperion_repro::sim::time::Ns;

const KEY: u64 = 0xC0FFEE;

fn main() {
    // 1. Boot a 4-DPU cluster (members boot in parallel).
    let (mut cluster, ready) = DpuCluster::boot(4, KEY, Ns::ZERO);
    println!("{}-DPU cluster ready at {ready}", cluster.len());

    // 2. Client-driven partitioned KV: the client routes each key to its
    //    owner directly, no coordinator on the path.
    let mut now = ready;
    for k in 0..12u64 {
        let (owner, _, done) = cluster
            .serve_partitioned(
                k,
                ServiceRequest::KvPut {
                    key: k,
                    value: k * k,
                },
                now,
            )
            .expect("put");
        now = done;
        println!("  key {k:>2} -> DPU {owner}");
    }
    let (_, resp, done) = cluster
        .serve_partitioned(7, ServiceRequest::KvGet { key: 7 }, now)
        .expect("get");
    if let ServiceResponse::Value(v) = resp {
        println!("kv[7] = {v:?} (from DPU {})", cluster.owner_of(7));
    }
    now = done;

    // 3. Remote one-hop routing over the network.
    let mut net = Network::new();
    let client = Endpoint::new(net.add_node(), EndpointKind::Kernel);
    let endpoints: Vec<Endpoint> = (0..4)
        .map(|_| Endpoint::new(net.add_node(), EndpointKind::Hardware))
        .collect();
    let (_, d) = cluster
        .remote_call(
            &mut net,
            Transport::new(TransportKind::Udp),
            client,
            &endpoints,
            7,
            ServiceRequest::KvGet { key: 7 },
            16,
            16,
            now,
        )
        .expect("remote call");
    println!(
        "remote get over UDP: {} in {} round trip(s)",
        d.done - now,
        d.wire_rounds
    );

    // 4. A cluster-wide shared log: global sequencer, one write-once unit
    //    per site, collective sealing on reconfiguration.
    let mut log = ClusterLog::new(4, 1 << 16);
    let mut t = now;
    for i in 0..8u64 {
        let (pos, done) = log
            .append(format!("event-{i}").as_bytes(), t)
            .expect("append");
        t = done;
        println!("  log position {pos} -> site {}", pos % 4);
    }
    log.reconfigure();
    println!("sealed into epoch 1; tail = {}", log.tail());

    // 5. NVMe-oF: block storage exported straight from a DPU's fabric.
    let mut target = NvmeOfTarget::new(1 << 16);
    let mut ini = Initiator::new();
    let w = ini.write(3, bytes::Bytes::from(vec![0xAB; 4096]));
    let (resp, t2) = target.handle(&w.encode(), t);
    let resp = ResponseCapsule::decode(&resp).expect("decodable");
    println!("\nNVMe-oF write capsule -> {:?} at {t2}", resp.status);
    let r = ini.read(3, 1);
    let (resp, _) = target.handle(&r.encode(), t2);
    let resp = ResponseCapsule::decode(&resp).expect("decodable");
    println!(
        "NVMe-oF read capsule  -> {:?}, {} bytes, first byte {:#x}",
        resp.status,
        resp.data.len(),
        resp.data[0]
    );
}
