//! The Corfu shared log as a network-attached SSD service (paper §2.4):
//! appends striped across flash log units, hole filling, and seal-based
//! reconfiguration after a sequencer failure.
//!
//! Run with: `cargo run --example shared_log`

use hyperion_repro::sim::time::Ns;
use hyperion_repro::storage::corfu::{CorfuLog, LogEntry};

fn main() {
    let mut log = CorfuLog::new(4, 1 << 16);
    println!(
        "shared log over {} flash units, epoch {}",
        log.num_units(),
        log.epoch()
    );

    // Three clients append concurrently (interleaved closed loops).
    let mut client_time = [Ns::ZERO; 3];
    for i in 0..12u64 {
        let c = (i % 3) as usize;
        let entry = format!("client-{c}-msg-{}", i / 3);
        let (pos, done) = log
            .append(entry.as_bytes(), client_time[c])
            .expect("append");
        client_time[c] = done;
        println!("  client {c} -> position {pos} (durable at {done})");
    }

    // A writer takes the next token and crashes without writing; a reader
    // that needs the position fills the hole with junk so the log stays
    // readable.
    let hole = log.tail();
    println!("\nsimulating a crashed writer holding position {hole}");
    log.fill(hole, client_time[0]).expect("fill the hole");
    let (entry, _) = log.read(hole, client_time[0]).expect("read hole");
    println!("position {hole} now reads as {entry:?}");

    // Seal + reconfigure: stragglers from the old epoch are fenced.
    let new_epoch = log.reconfigure();
    println!(
        "reconfigured to epoch {new_epoch}; tail recovered as {}",
        log.tail()
    );
    let stale = log.unit_mut(0).write(0, 999, b"stale", Ns::ZERO);
    println!(
        "stale-epoch write rejected: {:?}",
        stale.expect_err("sealed")
    );

    // Reads are position-addressed and immutable.
    let (entry, _) = log.read(0, client_time[2]).expect("read");
    if let LogEntry::Data(d) = entry {
        println!(
            "\nposition 0 reads back: {:?}",
            std::str::from_utf8(&d).expect("utf8")
        );
    }
    println!("final tail: {}", log.tail());
}
