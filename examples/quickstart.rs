//! Quickstart: assemble a Hyperion DPU, boot it standalone, deploy a
//! verified eBPF kernel over the control plane, and use the storage
//! services — with zero CPU on any data path.
//!
//! Run with: `cargo run --example quickstart`

use hyperion_repro::core::control::{ControlPlane, ControlRequest, ControlResponse};
use hyperion_repro::core::dpu::DpuBuilder;
use hyperion_repro::core::services::{ServiceRequest, ServiceResponse, TableRegistry};
use hyperion_repro::mem::seglevel::{AllocHint, SegmentId};
use hyperion_repro::sim::time::Ns;

const AUTH_KEY: u64 = 0xC0FFEE;

fn main() {
    // 1. Power on. The DPU self-tests, recovers its segment table from
    //    the boot NVMe area, and comes up with no host attached.
    let mut dpu = DpuBuilder::new().auth_key(AUTH_KEY).build();
    let ready = dpu.boot(Ns::ZERO).expect("standalone boot");
    println!("DPU ready at {ready} (state: {:?})", dpu.state());

    // 2. Deploy a packet-filter kernel through the network control plane:
    //    assemble -> verify -> compile to a hardware pipeline -> signed
    //    bitstream -> ICAP partial reconfiguration into a slot.
    let mut cp = ControlPlane::new(AUTH_KEY);
    let resp = cp
        .handle(
            &mut dpu,
            ControlRequest::Deploy {
                name: "drop-short".into(),
                source: r"
                    ; pass packets of at least 20 bytes
                    jlt r2, 20, drop
                    mov r0, 1
                    exit
                drop:
                    mov r0, 0
                    exit
                "
                .into(),
                ctx_min_len: 0,
            },
            ready,
        )
        .expect("deploy");
    let ControlResponse::Deployed { slot, live_at } = resp else {
        unreachable!()
    };
    println!(
        "kernel live in {slot} at {live_at} (reconfig {})",
        live_at - ready
    );

    // 3. Run packets through the deployed hardware pipeline.
    let kernel = cp.kernel_mut(slot).expect("deployed");
    let mut long_packet = vec![0u8; 64];
    let mut short_packet = vec![0u8; 8];
    let (pass, _) = kernel
        .pipeline
        .process(&mut kernel.vm, &mut long_packet, live_at)
        .expect("process");
    let (drop, _) = kernel
        .pipeline
        .process(&mut kernel.vm, &mut short_packet, live_at)
        .expect("process");
    println!("64 B packet -> {}, 8 B packet -> {}", pass.ret, drop.ret);

    // 4. The single-level store: one 128-bit id namespace over DRAM, HBM
    //    and NVMe; durable objects survive reboots.
    let t = live_at;
    dpu.segments
        .create(SegmentId(0xDECAF), 4096, AllocHint::Durable, t)
        .expect("create");
    let t = dpu
        .segments
        .write(SegmentId(0xDECAF), 0, b"persistent, CPU-free", t)
        .expect("write");
    let t = dpu.segments.persist_table(t).expect("persist");
    let t = dpu.boot(t).expect("reboot");
    let (data, t) = dpu
        .segments
        .read(SegmentId(0xDECAF), 0, 20, t)
        .expect("read");
    println!(
        "after reboot, segment 0xDECAF holds: {:?}",
        std::str::from_utf8(&data).expect("utf8")
    );

    // 5. The exported services: KV, shared log.
    let reg = TableRegistry::default();
    let (_, t) = dpu
        .serve(&reg, ServiceRequest::KvPut { key: 7, value: 42 }, t)
        .expect("put");
    let (resp, t) = dpu
        .serve(&reg, ServiceRequest::KvGet { key: 7 }, t)
        .expect("get");
    if let ServiceResponse::Value(v) = resp {
        println!("kv[7] = {v:?}");
    }
    let (resp, _) = dpu
        .serve(
            &reg,
            ServiceRequest::LogAppend {
                data: bytes::Bytes::from_static(b"first entry"),
            },
            t,
        )
        .expect("append");
    if let ServiceResponse::Appended { position } = resp {
        println!("log position {position} written durably");
    }
    println!("total requests served: {}", dpu.counters.get("served"));
}
