//! The fail2ban-style persistent packet logger (paper §2.4): a verified
//! eBPF classifier deployed into a fabric slot, counting auth failures per
//! flow and durably logging every ban to the Corfu shared log on the
//! DPU's own SSDs.
//!
//! Run with: `cargo run --example packet_logger`

use hyperion_repro::apps::fail2ban::{deploy, run_on_dpu, MAX_RETRY};
use hyperion_repro::apps::trafficgen::TrafficGen;
use hyperion_repro::core::control::ControlPlane;
use hyperion_repro::core::dpu::DpuBuilder;
use hyperion_repro::sim::time::Ns;
use hyperion_repro::storage::corfu::LogEntry;

const AUTH_KEY: u64 = 0xC0FFEE;

fn main() {
    let mut dpu = DpuBuilder::new().auth_key(AUTH_KEY).build();
    let t0 = dpu.boot(Ns::ZERO).expect("boot");
    let mut cp = ControlPlane::new(AUTH_KEY);
    let (slot, live) = deploy(&mut dpu, &mut cp, t0).expect("deploy");
    println!("fail2ban kernel live in {slot} (maxretry = {MAX_RETRY})");

    // 20k packets from 2,000 flows; 15% of flows are brute-forcers.
    let mut gen = TrafficGen::new(2026, 2_000, 0.15, 64);
    let report = run_on_dpu(&mut dpu, &mut cp, slot, &mut gen, 20_000, live);
    let elapsed = report.end - live;
    println!(
        "processed {} packets in {elapsed} ({:.2} Mpps)",
        report.packets,
        report.packets as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "bans: {}   drops of banned flows: {}   ban events logged: {}",
        report.bans, report.dropped, report.logged
    );

    // Read the first few ban records back from the durable log.
    println!("\nfirst ban records from the shared log:");
    for pos in 0..report.logged.min(5) {
        let (entry, _) = dpu.log.read(pos, report.end).expect("read");
        if let LogEntry::Data(d) = entry {
            let flow = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
            let at = u64::from_le_bytes(d[8..16].try_into().expect("8 bytes"));
            println!("  position {pos}: flow {flow} banned at {}", Ns(at));
        }
    }
}
