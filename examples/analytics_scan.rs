//! End-to-end analytics (paper §2.3): a Parquet-like table stored on the
//! DPU's file system, scanned two ways — through the CPU-free
//! annotation-driven path with predicate pushdown, and through the host
//! software stack.
//!
//! Run with: `cargo run --example analytics_scan`

use hyperion_repro::apps::analytics::{build_dataset, dpu_scan, host_scan};
use hyperion_repro::baseline::host::HostServer;
use hyperion_repro::sim::time::Ns;
use hyperion_repro::storage::columnar::{ColumnBatch, Predicate};

fn main() {
    // A 200k-row sales table with four columns.
    let rows = 200_000u64;
    let batch = ColumnBatch::new(
        vec![
            "order".into(),
            "price".into(),
            "qty".into(),
            "region".into(),
        ],
        vec![
            (0..rows).collect(),
            (0..rows).map(|i| (i * 31) % 900).collect(),
            (0..rows).map(|i| i % 12).collect(),
            (0..rows).map(|i| i / (rows / 16)).collect(),
        ],
    )
    .expect("batch");
    let (mut store, ds, t0) = build_dataset(&batch, 20_000, "/warehouse/sales.col", Ns::ZERO);
    println!(
        "dataset: {} rows in {} blocks at {}",
        rows, ds.blocks, ds.path
    );

    let pred = Predicate::between("order", 42_000, 43_999); // 1% of rows
    let dpu = dpu_scan(&mut store, &ds, &["price"], Some(&pred), t0);
    println!(
        "\non-DPU annotated scan: {} rows in {} ({} blocks read, {} row groups skipped)",
        dpu.batch.num_rows(),
        dpu.done - t0,
        dpu.blocks_read,
        dpu.stats.groups_skipped,
    );

    let (mut store2, ds2, t2) = build_dataset(&batch, 20_000, "/warehouse/sales.col", Ns::ZERO);
    let mut host = HostServer::new(1 << 20);
    let h = host_scan(&mut store2, &mut host, &ds2, &["price"], Some(&pred), t2);
    println!(
        "host-stack scan:       {} rows in {} ({} blocks read, {} syscalls, {} copies)",
        h.batch.num_rows(),
        h.done - t2,
        h.blocks_read,
        host.counters.get("syscalls"),
        host.counters.get("copies"),
    );
    assert_eq!(dpu.batch, h.batch);
    println!(
        "\nidentical results; DPU path is {:.1}x faster and reads {:.1}x fewer blocks",
        (h.done - t2).0 as f64 / (dpu.done - t0).0 as f64,
        h.blocks_read as f64 / dpu.blocks_read as f64,
    );
}
